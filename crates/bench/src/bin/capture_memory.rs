//! E11 — the memory footprint of session capture (paper §6, issue 1:
//! "it potentially incurs a significant memory footprint,
//! necessitating an optimization strategy").
//!
//! Measures the per-session server memory as users visit, and the
//! hit-rate effect of bounding the store with LRU eviction.

use cachecatalyst_bench::table::render_table;
use cachecatalyst_catalyst::{AggregateCapture, SessionCapture};
use cachecatalyst_webmodel::{Site, SiteSpec};

fn main() {
    let site = Site::generate(SiteSpec {
        host: "capture.example".into(),
        seed: 31,
        n_resources: 70,
        js_discovered_fraction: 0.1,
        ..Default::default()
    });
    let paths: Vec<String> = site
        .resources()
        .filter(|r| r.spec.path != site.base_path())
        .map(|r| r.spec.path.clone())
        .collect();

    println!("== E11: session-capture memory footprint ==\n");
    println!(
        "site: {} subresources; every visitor session records them all\n",
        paths.len()
    );

    // Unbounded growth.
    let mut rows = Vec::new();
    let mut capture = SessionCapture::new(usize::MAX >> 1);
    for sessions in [100usize, 1_000, 10_000, 100_000] {
        while capture.len() < sessions {
            let s = format!("user-{:06}", capture.len());
            for p in &paths {
                capture.record(&s, site.base_path(), p);
            }
        }
        rows.push(vec![
            format!("{sessions}"),
            format!("{:.1} MB", capture.memory_footprint() as f64 / 1e6),
            format!(
                "{:.0} B",
                capture.memory_footprint() as f64 / sessions as f64
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "sessions".to_owned(),
                "footprint".to_owned(),
                "per session".to_owned(),
            ],
            &rows
        )
    );

    // Bounded store: returning-visitor coverage under LRU pressure.
    println!("\nBounded store (LRU), 50,000 visiting sessions, revisit probability by recency:");
    let mut rows = Vec::new();
    for budget in [1_000usize, 10_000, 50_000] {
        let mut capture = SessionCapture::new(budget);
        for i in 0..50_000usize {
            let s = format!("user-{i:06}");
            for p in &paths {
                capture.record(&s, site.base_path(), p);
            }
        }
        // A returning visitor from the most recent N still has a
        // record iff they were not evicted.
        let recent_covered = (0..1_000)
            .filter(|i| {
                capture
                    .paths(&format!("user-{:06}", 49_999 - i), site.base_path())
                    .is_some()
            })
            .count();
        rows.push(vec![
            format!("{budget}"),
            format!("{:.1} MB", capture.memory_footprint() as f64 / 1e6),
            format!("{}", capture.evicted),
            format!("{:.0}%", recent_covered as f64 / 10.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "budget (records)".to_owned(),
                "footprint".to_owned(),
                "evicted".to_owned(),
                "recent-1k coverage".to_owned(),
            ],
            &rows
        )
    );
    println!("\nAn LRU budget keeps the footprint flat while preserving coverage for");
    println!("recently-active sessions — the visitors most likely to return soon.");

    // The aggregate alternative: memory independent of visitor count.
    println!("\nAggregate (popularity) capture over the same traffic:");
    let mut rows = Vec::new();
    for sessions in [100usize, 10_000, 100_000] {
        let mut agg = AggregateCapture::default();
        for _ in 0..sessions {
            agg.record_visit(site.base_path());
            for p in &paths {
                agg.record(site.base_path(), p);
            }
        }
        let config = agg.config_for(site.base_path(), &|p| site.etag_at(p, 0));
        rows.push(vec![
            format!("{sessions}"),
            format!("{:.1} KB", agg.memory_footprint() as f64 / 1000.0),
            format!("{}", config.len()),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "sessions".to_owned(),
                "footprint".to_owned(),
                "paths mapped".to_owned(),
            ],
            &rows
        )
    );
    println!("\nConstant kilobytes instead of hundreds of megabytes, with full");
    println!("coverage of the resources every visitor loads — the optimization");
    println!("strategy the paper's §6 calls for.");
}
