//! E3 — motivating statistics (§2.2): audits that the workload model
//! reproduces the measurements the paper cites.
//!
//! Checked claims:
//!  * "only about 50 percent of the resources that can be cached are
//!    actually cached" (Liu et al., Ma et al.);
//!  * "40% of resources have a TTL of less than one day, but 86% of
//!    these do not change within that period" (Liu et al.);
//!  * "47% of resources expire in the cache even though their content
//!    has not changed" (Ramanujam et al.).

use std::time::Duration;

use cachecatalyst_bench::table::render_table;
use cachecatalyst_webmodel::{generate_corpus, ChangeModel, CorpusSpec, HeaderPolicy};

fn main() {
    let n_sites: usize = std::env::args()
        .skip_while(|a| a != "--sites")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let sites = generate_corpus(&CorpusSpec {
        n_sites,
        ..Default::default()
    });

    let day = Duration::from_secs(86_400);
    let mut total = 0usize;
    let mut no_store = 0usize;
    let mut no_cache = 0usize;
    let mut with_ttl = 0usize;
    let mut ttl_under_day = 0usize;
    let mut ttl_under_day_unchanged = 0usize;
    let mut expired_unchanged = 0usize;
    let mut expired = 0usize;

    for site in &sites {
        for r in site.resources() {
            if r.spec.path == site.base_path() {
                continue;
            }
            total += 1;
            match &r.policy {
                HeaderPolicy::NoStore => no_store += 1,
                HeaderPolicy::NoCache => no_cache += 1,
                HeaderPolicy::MaxAge(ttl) => {
                    with_ttl += 1;
                    // Sample an arbitrary moment in the site's life.
                    let t0 = 40 * 86_400i64;
                    if *ttl < day {
                        ttl_under_day += 1;
                        if !changes_within(&r.spec.change, t0, day) {
                            ttl_under_day_unchanged += 1;
                        }
                    }
                    // "Expire unchanged": the TTL elapses before the
                    // content actually changes.
                    expired += 1;
                    if !changes_within(&r.spec.change, t0, *ttl) {
                        expired_unchanged += 1;
                    }
                }
            }
        }
    }

    let pct = |a: usize, b: usize| {
        if b == 0 {
            0.0
        } else {
            a as f64 / b as f64 * 100.0
        }
    };

    println!("== E3: motivating statistics over {n_sites} sites ({total} subresources) ==\n");
    let rows = vec![
        vec![
            "effectively cacheable-and-cached (max-age)".to_owned(),
            format!("{:.0}%", pct(with_ttl, total)),
            "~50-60% (Liu/Ma: ≈50% of cacheable actually cached)".to_owned(),
        ],
        vec![
            "no-store (never cached)".to_owned(),
            format!("{:.0}%", pct(no_store, total)),
            "CMS defaults".to_owned(),
        ],
        vec![
            "no-cache (revalidate every use)".to_owned(),
            format!("{:.0}%", pct(no_cache, total)),
            "unguessable TTLs".to_owned(),
        ],
        vec![
            "TTL < 1 day (of TTL'd resources)".to_owned(),
            format!("{:.0}%", pct(ttl_under_day, with_ttl)),
            "paper cites 40%".to_owned(),
        ],
        vec![
            "…of those, unchanged within the day".to_owned(),
            format!("{:.0}%", pct(ttl_under_day_unchanged, ttl_under_day)),
            "paper cites 86%".to_owned(),
        ],
        vec![
            "expire in cache though content unchanged".to_owned(),
            format!("{:.0}%", pct(expired_unchanged, expired)),
            "paper cites 47%".to_owned(),
        ],
    ];
    println!(
        "{}",
        render_table(
            &[
                "statistic".to_owned(),
                "measured".to_owned(),
                "reference".to_owned()
            ],
            &rows
        )
    );
}

fn changes_within(change: &ChangeModel, t0: i64, window: Duration) -> bool {
    change.changes_within(t0, window)
}
