//! E17 — server-side cost (paper §6: "The effect of this approach on
//! the performance of web servers should also be analyzed").
//!
//! Measures real CPU time per request of the origin handler in each
//! mode: the extra work catalyst adds is DOM traversal + map
//! construction on HTML responses, amortized by the config cache.

use std::sync::Arc;
use std::time::Instant;

use cachecatalyst_bench::table::render_table;
use cachecatalyst_httpwire::Request;
use cachecatalyst_origin::{HeaderMode, OriginServer};
use cachecatalyst_webmodel::{Site, SiteSpec};

fn measure(origin: &OriginServer, req: &Request, t: i64, iters: u32) -> f64 {
    // Warm up (fills the config cache where applicable).
    for _ in 0..8 {
        let _ = origin.handle(req, t);
    }
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(origin.handle(req, t));
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    println!("== E17: origin handler cost (µs per request, host CPU) ==\n");
    let mut rows = Vec::new();
    for n_resources in [25usize, 70, 200] {
        let site = Site::generate(SiteSpec {
            host: format!("cost{n_resources}.example"),
            seed: 60 + n_resources as u64,
            n_resources,
            js_discovered_fraction: 0.0,
            ..Default::default()
        });
        let nav = Request::get("/index.html");
        let sub = {
            let path = site
                .resources()
                .find(|r| r.spec.path != "/index.html")
                .unwrap()
                .spec
                .path
                .clone();
            Request::get(&path)
        };
        let etag = site.etag_at("/index.html", 0).unwrap().to_string();
        let cond_nav = Request::get("/index.html").with_header("if-none-match", &etag);

        let baseline = Arc::new(OriginServer::new(site.clone(), HeaderMode::Baseline));
        let catalyst = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));

        // Cold map build cost (uncached, fresh origin per probe).
        let cold_build = {
            let fresh = OriginServer::new(site.clone(), HeaderMode::Catalyst);
            let start = Instant::now();
            std::hint::black_box(fresh.handle(&nav, 0));
            start.elapsed().as_secs_f64() * 1e6
        };

        rows.push(vec![
            format!("{n_resources}"),
            format!("{:.0}", measure(&baseline, &nav, 0, 2_000)),
            format!("{:.0}", measure(&catalyst, &nav, 0, 2_000)),
            format!("{:.0}", cold_build),
            format!("{:.0}", measure(&catalyst, &cond_nav, 0, 5_000)),
            format!("{:.1}", measure(&baseline, &sub, 0, 10_000)),
            format!("{:.1}", measure(&catalyst, &sub, 0, 10_000)),
        ]);
    }

    println!(
        "{}",
        render_table(
            &[
                "resources".to_owned(),
                "nav base µs".to_owned(),
                "nav cat µs".to_owned(),
                "first map build µs".to_owned(),
                "nav 304 cat µs".to_owned(),
                "subres base µs".to_owned(),
                "subres cat µs".to_owned(),
            ],
            &rows
        )
    );
    println!("The first map build (DOM + CSS walk) is the dominant cost and is");
    println!("amortized by the per-(page, time) config cache. Steady-state");
    println!("navigations still pay 2–4× the baseline (cloning + serializing the");
    println!("map into headers) but stay well under a millisecond; subresource");
    println!("serving is unchanged. (Subresource columns include body synthesis,");
    println!("which depends on the sampled resource's size.)");
}
