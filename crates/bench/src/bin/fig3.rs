//! Figure 3: average % reduction in PLT of CacheCatalyst vs the
//! status-quo caching approach, across throughput × latency.
//!
//! Usage: `fig3 [--sites N] [--delays all|1m|1h|6h|1d|1w] [--cdf]
//!               [--capture] [--churn]`
//!
//! By default content is **frozen** between visits, matching the
//! paper's methodology (they cloned each homepage once and aged only
//! the client's clock, so revalidations always succeed). `--churn`
//! lets resources actually change per the workload model — the
//! extension analysis in EXPERIMENTS.md. `--cdf` prints the per-site
//! distribution at the 5G-median condition (experiment E8);
//! `--capture` uses the session-capture variant as treatment.

use std::time::Duration;

use cachecatalyst_bench::runner::{
    base_url_of, first_visit_time, ClientKind, ContentModel, ExperimentGrid, REVISIT_DELAYS,
};
use cachecatalyst_bench::table::{render_series, render_table};
use cachecatalyst_browser::SingleOrigin;
use cachecatalyst_browser::{FrozenUpstream, Upstream};
use cachecatalyst_netsim::NetworkConditions;
use cachecatalyst_origin::OriginServer;
use cachecatalyst_webmodel::{generate_corpus, CorpusSpec};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_val = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let n_sites: usize = arg_val("--sites")
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    let want_cdf = args.iter().any(|a| a == "--cdf");
    let treatment = if args.iter().any(|a| a == "--capture") {
        ClientKind::CatalystCapture
    } else {
        ClientKind::Catalyst
    };
    let content = if args.iter().any(|a| a == "--churn") {
        ContentModel::Churning
    } else {
        ContentModel::Frozen
    };
    let delays: Vec<Duration> = match arg_val("--delays").as_deref() {
        Some("1m") => vec![Duration::from_secs(60)],
        Some("1h") => vec![Duration::from_secs(3600)],
        Some("6h") => vec![Duration::from_secs(6 * 3600)],
        Some("1d") => vec![Duration::from_secs(86_400)],
        Some("1w") => vec![Duration::from_secs(7 * 86_400)],
        _ => REVISIT_DELAYS.to_vec(),
    };

    eprintln!("generating {n_sites}-site corpus…");
    let sites = generate_corpus(&CorpusSpec {
        n_sites,
        ..Default::default()
    });

    let throughputs = NetworkConditions::figure3_throughputs();
    let latencies = NetworkConditions::figure3_latencies();

    eprintln!(
        "sweeping {} conditions × {} delays × {} sites × 2 policies…",
        throughputs.len() * latencies.len(),
        delays.len(),
        sites.len()
    );
    let grid = ExperimentGrid::run_with_content(
        &sites,
        ClientKind::Baseline,
        treatment,
        &throughputs,
        &latencies,
        &delays,
        content,
    );

    println!("== Figure 3: PLT reduction (%) by network condition ==");
    println!(
        "   treatment: {treatment:?}; content: {content:?}; mean over {} sites × {} revisit delays\n",
        sites.len(),
        delays.len()
    );
    let headers: Vec<String> = std::iter::once("throughput \\ RTT".to_owned())
        .chain(latencies.iter().map(|l| format!("{}ms", l.as_millis())))
        .collect();
    let rows: Vec<Vec<String>> = grid
        .throughputs
        .iter()
        .enumerate()
        .map(|(ti, bps)| {
            std::iter::once(format!("{} Mbps", bps / 1_000_000))
                .chain(
                    grid.cells[ti]
                        .iter()
                        .map(|c| format!("{:.1}%", c.improvement_percent())),
                )
                .collect()
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    println!("== Absolute warm-visit PLT (ms), baseline → treatment ==\n");
    let rows: Vec<Vec<String>> = grid
        .throughputs
        .iter()
        .enumerate()
        .map(|(ti, bps)| {
            std::iter::once(format!("{} Mbps", bps / 1_000_000))
                .chain(
                    grid.cells[ti]
                        .iter()
                        .map(|c| format!("{:.0}→{:.0}", c.baseline_plt_ms, c.treatment_plt_ms)),
                )
                .collect()
        })
        .collect();
    println!("{}", render_table(&headers, &rows));

    // The headline claim: mean reduction at the global 5G median.
    let median_cond = NetworkConditions::five_g_median();
    let ti = grid
        .throughputs
        .iter()
        .position(|&b| b == median_cond.down_bps)
        .unwrap();
    let li = grid
        .latencies
        .iter()
        .position(|&l| l == median_cond.rtt)
        .unwrap();
    println!(
        "Headline (paper: ~30% at 60Mbps/40ms): {:.1}%\n",
        grid.cells[ti][li].improvement_percent()
    );

    if want_cdf {
        per_site_distribution(&sites, treatment, median_cond, &delays, content);
    }
}

/// E8: the per-site improvement distribution at one condition.
fn per_site_distribution(
    sites: &[cachecatalyst_webmodel::Site],
    treatment: ClientKind,
    cond: NetworkConditions,
    delays: &[Duration],
    content: ContentModel,
) {
    let mut improvements: Vec<f64> = Vec::new();
    for site in sites {
        let base = base_url_of(site);
        let t0 = first_visit_time(site);
        let mut plts = [0.0f64; 2];
        for (i, kind) in [ClientKind::Baseline, treatment].into_iter().enumerate() {
            let origin = Arc::new(OriginServer::new(site.clone(), kind.header_mode()));
            let upstream: Box<dyn Upstream> = match content {
                ContentModel::Frozen => Box::new(FrozenUpstream::new(SingleOrigin(origin), t0)),
                ContentModel::Churning => Box::new(SingleOrigin(origin)),
            };
            let mut cold = kind.browser();
            cold.load(upstream.as_ref(), cond, &base, t0);
            for &d in delays {
                let mut b = cold.clone();
                plts[i] += b
                    .load(upstream.as_ref(), cond, &base, t0 + d.as_secs() as i64)
                    .plt_ms();
            }
        }
        improvements.push((plts[0] - plts[1]) / plts[0] * 100.0);
    }
    improvements.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| improvements[((improvements.len() - 1) as f64 * p) as usize];
    println!("== E8: per-site PLT reduction at {} ==", cond.label());
    let series: Vec<(String, f64)> = [
        ("p10", pct(0.10)),
        ("p25", pct(0.25)),
        ("p50", pct(0.50)),
        ("p75", pct(0.75)),
        ("p90", pct(0.90)),
        (
            "mean",
            improvements.iter().sum::<f64>() / improvements.len() as f64,
        ),
    ]
    .into_iter()
    .map(|(l, v)| (l.to_owned(), v))
    .collect();
    println!("{}", render_series("reduction percentiles", &series, "%"));
}
