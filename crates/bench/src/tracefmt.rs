//! Human-readable rendering of recorded span trees.
//!
//! Turns the flat span list a [`SpanSink`] drains into an indented
//! per-trace tree, one line per span, with durations relative to each
//! trace's root. This is the text artifact the tracing experiment
//! writes next to the waterfall (`results/trace_*.txt`).
//!
//! [`SpanSink`]: cachecatalyst_telemetry::span::SpanSink

use std::collections::HashMap;
use std::fmt::Write as _;

use cachecatalyst_telemetry::span::{Span, SpanId, TraceId};

/// Renders every trace present in `spans` as an indented tree.
///
/// Spans whose parent is missing from the slice (e.g. dropped by the
/// ring buffer) are promoted to roots so nothing is silently lost.
pub fn render(spans: &[Span]) -> String {
    let mut out = String::new();
    // Traces in chronological order of their earliest span.
    let mut first_seen: HashMap<TraceId, f64> = HashMap::new();
    for s in spans {
        let e = first_seen.entry(s.trace_id).or_insert(f64::INFINITY);
        *e = e.min(s.start_ms);
    }
    let mut trace_ids: Vec<TraceId> = first_seen.keys().copied().collect();
    trace_ids.sort_by(|a, b| first_seen[a].total_cmp(&first_seen[b]).then(a.0.cmp(&b.0)));
    for (i, trace) in trace_ids.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        let members: Vec<&Span> = spans.iter().filter(|s| s.trace_id == *trace).collect();
        render_trace(&mut out, *trace, &members);
    }
    out
}

fn render_trace(out: &mut String, trace: TraceId, spans: &[&Span]) {
    let present: HashMap<SpanId, &Span> = spans.iter().map(|s| (s.span_id, *s)).collect();
    let mut children: HashMap<SpanId, Vec<&Span>> = HashMap::new();
    let mut roots: Vec<&Span> = Vec::new();
    for s in spans {
        match s.parent.filter(|p| present.contains_key(p)) {
            Some(p) => children.entry(p).or_default().push(s),
            None => roots.push(s),
        }
    }
    let by_time = |a: &&Span, b: &&Span| {
        a.start_ms
            .total_cmp(&b.start_ms)
            .then(a.span_id.0.cmp(&b.span_id.0))
    };
    roots.sort_by(by_time);
    for v in children.values_mut() {
        v.sort_by(by_time);
    }
    let _ = writeln!(out, "trace {:032x} — {} span(s)", trace.0, spans.len());
    for root in &roots {
        render_span(out, root, &children, root.start_ms, 0);
    }
}

fn render_span(
    out: &mut String,
    span: &Span,
    children: &HashMap<SpanId, Vec<&Span>>,
    t0_ms: f64,
    depth: usize,
) {
    let mut attrs = String::new();
    for (k, v) in &span.attrs {
        let _ = write!(attrs, " {k}={v}");
    }
    let _ = writeln!(
        out,
        "{:indent$}{} [{:.3}ms +{:.3}ms]{}",
        "",
        span.name,
        span.start_ms - t0_ms,
        span.duration_ms(),
        attrs,
        indent = depth * 2
    );
    for child in children.get(&span.span_id).map_or(&[][..], |v| v) {
        render_span(out, child, children, t0_ms, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, name: &'static str, start: f64, end: f64) -> Span {
        Span {
            trace_id: TraceId(7),
            span_id: SpanId(id),
            parent: parent.map(SpanId),
            name,
            start_ms: start,
            end_ms: end,
            attrs: vec![],
        }
    }

    #[test]
    fn renders_nested_tree_with_relative_times() {
        let spans = vec![
            span(1, None, "page_load", 1000.0, 1250.0),
            span(2, Some(1), "fetch", 1000.0, 1100.0),
            span(3, Some(2), "wait", 1020.0, 1080.0),
            span(4, Some(1), "fetch", 1100.0, 1250.0),
        ];
        let text = render(&spans);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "{text}");
        assert!(lines[0].starts_with("trace 00000000000000000000000000000007"));
        assert!(lines[1].starts_with("page_load [0.000ms +250.000ms]"));
        assert!(lines[2].starts_with("  fetch [0.000ms +100.000ms]"));
        assert!(lines[3].starts_with("    wait [20.000ms +60.000ms]"));
        assert!(lines[4].starts_with("  fetch [100.000ms +150.000ms]"));
    }

    #[test]
    fn orphaned_span_is_promoted_to_root() {
        let spans = vec![
            span(1, None, "page_load", 0.0, 10.0),
            // Parent 99 was evicted from the ring: still rendered.
            span(2, Some(99), "fetch", 5.0, 9.0),
        ];
        let text = render(&spans);
        assert!(text.contains("\npage_load "), "{text}");
        assert!(text.contains("\nfetch "), "{text}");
    }

    #[test]
    fn separate_traces_render_separately() {
        let mut a = span(1, None, "page_load", 0.0, 1.0);
        a.trace_id = TraceId(1);
        let b = span(2, None, "page_load", 0.0, 1.0);
        let text = render(&[a, b]);
        assert_eq!(text.matches("trace 0").count(), 2, "{text}");
    }
}
