//! Section-spliced benchmark JSON.
//!
//! `BENCH_edge.json` is written by two binaries — `edge_throughput`
//! owns the `"throughput"` section, `edge_tier_bench` owns `"tier"` —
//! so neither may clobber the other's committed baseline. Each binary
//! renders only its own section and splices it into the file,
//! preserving whatever the other section currently says.
//!
//! The format is deliberately trivial (no JSON parser in the
//! workspace): top-level sections are `"name": { ... }` objects
//! extracted by brace matching. Section bodies contain no string
//! escapes that could confuse the scan — the renderers only emit
//! numbers, plain labels and fixed keys.

/// Extracts the top-level object value of `"key": { ... }` from
/// `text`, returning the `{ ... }` slice (braces included).
pub fn extract_section(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = text.find(&needle)?;
    let rest = &text[at + needle.len()..];
    let open = rest.find('{')?;
    let mut depth = 0usize;
    for (i, c) in rest[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(rest[open..=open + i].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

/// Renders the spliced `BENCH_edge.json`: the section under `key`
/// replaced with `section`, every other known section carried over
/// from `existing` verbatim.
pub fn splice_bench_edge(existing: Option<&str>, key: &str, section: &str) -> String {
    const SECTIONS: [&str; 2] = ["throughput", "tier"];
    assert!(SECTIONS.contains(&key), "unknown BENCH_edge section {key}");
    let mut out = String::from("{\n  \"bench\": \"edge\"");
    for name in SECTIONS {
        let value = if name == key {
            Some(section.to_owned())
        } else {
            existing.and_then(|text| extract_section(text, name))
        };
        if let Some(value) = value {
            out.push_str(",\n  \"");
            out.push_str(name);
            out.push_str("\": ");
            out.push_str(&value);
        }
    }
    out.push_str("\n}\n");
    out
}

/// Reads `path` (if present), splices `section` under `key`, and
/// writes the result back.
pub fn write_bench_edge(path: &str, key: &str, section: &str) {
    let existing = std::fs::read_to_string(path).ok();
    std::fs::write(path, splice_bench_edge(existing.as_deref(), key, section))
        .unwrap_or_else(|e| panic!("write {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splice_preserves_the_other_section() {
        let first = splice_bench_edge(None, "throughput", "{\n    \"rows\": [1, 2]\n  }");
        assert!(first.contains("\"bench\": \"edge\""));
        assert!(first.contains("\"throughput\": {"));
        assert!(!first.contains("\"tier\""));

        let second = splice_bench_edge(Some(&first), "tier", "{\n    \"rows\": [3]\n  }");
        assert!(second.contains("\"throughput\": {"));
        assert!(second.contains("[1, 2]"));
        assert!(second.contains("\"tier\": {"));

        // Re-splicing throughput keeps the tier section intact.
        let third = splice_bench_edge(Some(&second), "throughput", "{\n    \"rows\": [9]\n  }");
        assert!(third.contains("[9]"));
        assert!(!third.contains("[1, 2]"));
        assert!(third.contains("\"tier\": {"));
        assert!(third.contains("[3]"));
    }

    #[test]
    fn extract_handles_nested_braces() {
        let text = "{\"a\": {\"x\": {\"y\": 1}, \"z\": 2}, \"b\": {\"w\": 3}}";
        assert_eq!(
            extract_section(text, "a").as_deref(),
            Some("{\"x\": {\"y\": 1}, \"z\": 2}")
        );
        assert_eq!(extract_section(text, "b").as_deref(), Some("{\"w\": 3}"));
        assert_eq!(extract_section(text, "c"), None);
    }
}
