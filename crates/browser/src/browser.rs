//! The browser facade: persistent state across visits.

use std::sync::Arc;

use cachecatalyst_catalyst::ServiceWorker;
use cachecatalyst_httpcache::{CacheMetrics, HttpCache};
use cachecatalyst_httpwire::Url;
use cachecatalyst_netsim::{FetchOutcome, NetworkConditions};
use cachecatalyst_telemetry::span::SpanSink;
use cachecatalyst_telemetry::{Event, FetchKind, Recorder};

use crate::engine::{Engine, EngineConfig, LoadReport};
use crate::upstream::Upstream;

/// A browser profile: an HTTP cache and a service-worker registration
/// that persist across page loads, plus the engine configuration.
#[derive(Clone)]
pub struct Browser {
    pub cache: HttpCache,
    pub sw: ServiceWorker,
    pub config: EngineConfig,
    recorder: Option<Arc<dyn Recorder>>,
    spans: Option<Arc<SpanSink>>,
}

/// Maps a simulator outcome onto the telemetry vocabulary.
pub(crate) fn fetch_kind(outcome: FetchOutcome) -> FetchKind {
    match outcome {
        FetchOutcome::FullTransfer => FetchKind::FullFetch,
        FetchOutcome::NotModified => FetchKind::Conditional304,
        FetchOutcome::CacheHit => FetchKind::CacheFresh,
        FetchOutcome::ServiceWorkerHit => FetchKind::EtagConfigHit,
        FetchOutcome::Pushed => FetchKind::Pushed,
    }
}

impl Browser {
    /// A browser with the given engine configuration and a cold cache.
    pub fn new(config: EngineConfig) -> Browser {
        Browser {
            cache: HttpCache::unbounded(),
            sw: ServiceWorker::new(),
            config,
            recorder: None,
            spans: None,
        }
    }

    /// Applies the shared [`ClientOptions`](crate::ClientOptions):
    /// recorder and span sink attach as with
    /// [`Browser::with_recorder`] / [`Browser::with_span_sink`], and
    /// the resilience knobs overlay [`Browser::config`]. Unset
    /// options leave the browser untouched.
    pub fn with_options(mut self, opts: &crate::ClientOptions) -> Browser {
        if let Some(recorder) = &opts.recorder {
            self.recorder = Some(Arc::clone(recorder));
        }
        if let Some(spans) = &opts.spans {
            self.spans = Some(Arc::clone(spans));
        }
        opts.apply_to(&mut self.config);
        self
    }

    /// Attaches an event sink; every subsequent [`Browser::load`]
    /// emits a page-load trace through it. Timestamps are virtual
    /// milliseconds (`t_secs × 1000` plus simulated offsets), so
    /// traces from discrete-event runs line up across visits.
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Browser {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a span sink; each subsequent load is offered to its
    /// sampler, and sampled loads record a full distributed trace
    /// (browser, proxies and origin share the propagated trace id).
    pub fn with_span_sink(mut self, spans: Arc<SpanSink>) -> Browser {
        self.spans = Some(spans);
        self
    }

    /// Status-quo browser: classic HTTP cache, no service worker.
    pub fn baseline() -> Browser {
        Browser::new(EngineConfig {
            use_http_cache: true,
            use_service_worker: false,
            ..Default::default()
        })
    }

    /// CacheCatalyst browser: the service worker fronts all fetches.
    pub fn catalyst() -> Browser {
        Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: true,
            ..Default::default()
        })
    }

    /// A browser that never reuses anything (cold path / lower bound).
    pub fn uncached() -> Browser {
        Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: false,
            ..Default::default()
        })
    }

    /// Loads `base_url` from `upstream` under `cond`, with the visit
    /// starting at absolute site time `t_secs`. Cache and SW state
    /// carry over to the next call — call repeatedly to model revisits.
    pub fn load(
        &mut self,
        upstream: &dyn Upstream,
        cond: NetworkConditions,
        base_url: &Url,
        t_secs: i64,
    ) -> LoadReport {
        let metrics_before = self.cache.metrics;
        let mut engine = Engine::new(
            upstream,
            cond,
            &self.config,
            &mut self.cache,
            &mut self.sw,
            t_secs,
        );
        if let Some(spans) = &self.spans {
            engine = engine.with_span_sink(spans);
        }
        let report = engine.load(base_url);
        // Remember the visit so push-if-changed comparators can use
        // the `x-cc-last-visit` announcement on the next load.
        self.config.last_visit = Some(t_secs);
        if let Some(recorder) = &self.recorder {
            emit_load_events(
                recorder.as_ref(),
                base_url,
                t_secs,
                &report,
                self.cache.metrics.delta_since(&metrics_before),
            );
        }
        report
    }

    /// Drops all cached state (a fresh profile).
    pub fn clear(&mut self) {
        self.cache.clear();
        self.sw.clear();
    }
}

/// Replays one finished load into the recorder: a page-load span, one
/// start/end pair per fetch, and the HTTP-cache delta the load caused.
fn emit_load_events(
    recorder: &dyn Recorder,
    base_url: &Url,
    t_secs: i64,
    report: &LoadReport,
    delta: CacheMetrics,
) {
    let page = base_url.to_string();
    let base_ms = t_secs as f64 * 1000.0;
    recorder.record(&Event::PageLoadStart {
        page: page.clone(),
        t_ms: base_ms,
    });
    for f in &report.trace.fetches {
        recorder.record(&Event::FetchStart {
            url: f.url.clone(),
            t_ms: base_ms + f.started.as_millis_f64(),
        });
        recorder.record(&Event::FetchEnd {
            url: f.url.clone(),
            t_ms: base_ms + f.completed.as_millis_f64(),
            outcome: fetch_kind(f.outcome),
            bytes_down: f.bytes_down,
            bytes_up: f.bytes_up,
            rtts: f.rtts,
        });
    }
    // The audit trail: one cache-decision verdict per resource, in
    // fetch order (audits[i] belongs to trace.fetches[i]).
    for (f, audit) in report.trace.fetches.iter().zip(&report.audits) {
        recorder.record(&Event::CacheDecision {
            t_ms: base_ms + f.completed.as_millis_f64(),
            audit: audit.clone(),
        });
    }
    recorder.record(&Event::PageLoadEnd {
        page,
        t_ms: base_ms + report.plt.as_millis_f64(),
        resources: report.trace.fetches.len(),
        plt_ms: report.plt_ms(),
    });
    recorder.record(&Event::CacheDelta {
        t_ms: base_ms + report.plt.as_millis_f64(),
        fresh_hits: delta.fresh_hits,
        stale_hits: delta.stale_hits,
        misses: delta.misses,
        stores: delta.stores,
        evictions: delta.evictions,
        revalidation_refreshes: delta.revalidation_refreshes,
    });
    if report.faults_injected > 0 || report.retries > 0 || report.degraded > 0 {
        recorder.record(&Event::FaultSummary {
            t_ms: base_ms + report.plt.as_millis_f64(),
            faults_injected: report.faults_injected,
            retries: report.retries,
            degraded: report.degraded as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upstream::SingleOrigin;
    use cachecatalyst_netsim::FetchOutcome;
    use cachecatalyst_origin::{HeaderMode, OriginServer};
    use cachecatalyst_webmodel::{example_site, revisit_delay};
    use std::sync::Arc;
    use std::time::Duration;

    fn cond() -> NetworkConditions {
        NetworkConditions::five_g_median()
    }

    fn upstream(mode: HeaderMode) -> SingleOrigin {
        SingleOrigin(Arc::new(OriginServer::new(example_site(), mode)))
    }

    fn base() -> Url {
        Url::parse("http://example.org/index.html").unwrap()
    }

    #[test]
    fn cold_load_fetches_all_five_resources() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        let report = browser.load(&up, cond(), &base(), 0);
        assert_eq!(report.trace.fetches.len(), 5, "{:#?}", report.trace);
        assert_eq!(report.full_transfers, 5);
        assert_eq!(report.network_requests(), 5);
        assert!(report.plt_ms() > 0.0);
    }

    #[test]
    fn dependency_chain_orders_discovery() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        let report = browser.load(&up, cond(), &base(), 0);
        let when = |p: &str| {
            report
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap_or_else(|| panic!("{p} missing"))
                .discovered
        };
        // index → (a.css, b.js) → c.js → d.jpg
        assert!(when("/a.css") > when("/index.html"));
        assert_eq!(when("/a.css"), when("/b.js"));
        assert!(when("/c.js") > when("/b.js"));
        assert!(when("/d.jpg") > when("/c.js"));
    }

    #[test]
    fn figure_1b_baseline_revisit() {
        // Figure 1(b): +2h revisit with classic caching. a.css is fresh
        // (max-age 1w) → cache hit; b.js revalidates → 304; c.js is
        // fresh (max-age 1d) → hit; d.jpg expired and changed → full;
        // index.html is no-cache and changed → full.
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        let first = browser.load(&up, cond(), &base(), 0);
        let t1 = revisit_delay().as_secs() as i64;
        let second = browser.load(&up, cond(), &base(), t1);

        let outcome = |p: &str| {
            second
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap()
                .outcome
        };
        assert_eq!(outcome("/a.css"), FetchOutcome::CacheHit);
        assert_eq!(outcome("/b.js"), FetchOutcome::NotModified);
        assert_eq!(outcome("/c.js"), FetchOutcome::CacheHit);
        assert_eq!(outcome("/d.jpg"), FetchOutcome::FullTransfer);
        assert_eq!(outcome("/index.html"), FetchOutcome::FullTransfer);
        assert!(second.plt < first.plt, "warm load must be faster");
    }

    #[test]
    fn figure_1c_catalyst_revisit() {
        // Figure 1(c): the optimized revisit. Unchanged resources
        // (a.css, b.js, c.js) are served by the SW with zero RTTs;
        // d.jpg changed → full fetch; index.html changed → full fetch.
        let up = upstream(HeaderMode::Catalyst);
        let mut browser = Browser::catalyst();
        browser.load(&up, cond(), &base(), 0);
        let t1 = revisit_delay().as_secs() as i64;
        let second = browser.load(&up, cond(), &base(), t1);

        let outcome = |p: &str| {
            second
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap()
                .outcome
        };
        assert_eq!(outcome("/a.css"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(outcome("/b.js"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(outcome("/d.jpg"), FetchOutcome::FullTransfer);
        assert_eq!(outcome("/index.html"), FetchOutcome::FullTransfer);
        // c.js is JS-discovered: static extraction does not cover it,
        // so it still needs a revalidation round trip.
        assert_eq!(outcome("/c.js"), FetchOutcome::NotModified);
        assert_eq!(second.sw_hits, 2);
    }

    #[test]
    fn catalyst_with_capture_beats_baseline_on_revisit() {
        let up_base = upstream(HeaderMode::Baseline);
        let up_cat = upstream(HeaderMode::CatalystWithCapture);
        let t1 = revisit_delay().as_secs() as i64;

        let mut b = Browser::baseline();
        b.load(&up_base, cond(), &base(), 0);
        let baseline = b.load(&up_base, cond(), &base(), t1);

        let mut c = Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: true,
            session: Some("s1".to_owned()),
            ..Default::default()
        });
        c.load(&up_cat, cond(), &base(), 0);
        let catalyst = c.load(&up_cat, cond(), &base(), t1);

        assert!(
            catalyst.plt < baseline.plt,
            "catalyst {:?} vs baseline {:?}",
            catalyst.plt,
            baseline.plt
        );
        assert!(catalyst.network_requests() <= baseline.network_requests());
    }

    #[test]
    fn plain_catalyst_ties_baseline_when_js_chain_dominates() {
        // On the Figure-1 example page the critical path runs through
        // JS-discovered resources, which static extraction cannot map
        // — so plain catalyst neither wins nor loses meaningfully on
        // this page. (Capture mode, and the statically-discovered
        // majority on realistic pages, provide the wins.)
        let up_base = upstream(HeaderMode::Baseline);
        let up_cat = upstream(HeaderMode::Catalyst);
        let t1 = revisit_delay().as_secs() as i64;

        let mut b = Browser::baseline();
        b.load(&up_base, cond(), &base(), 0);
        let baseline = b.load(&up_base, cond(), &base(), t1);

        let mut c = Browser::catalyst();
        c.load(&up_cat, cond(), &base(), 0);
        let catalyst = c.load(&up_cat, cond(), &base(), t1);

        let ratio = catalyst.plt.as_secs_f64() / baseline.plt.as_secs_f64();
        assert!((0.95..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unchanged_page_revisit_is_nearly_free_with_catalyst() {
        // Revisit after 1 minute: nothing changed. The only network
        // round trips are the base HTML (304 + fresh config) — every
        // subresource is served locally... except JS-discovered ones.
        let up = upstream(HeaderMode::Catalyst);
        let mut browser = Browser::catalyst();
        browser.load(&up, cond(), &base(), 0);
        let report = browser.load(&up, cond(), &base(), 60);
        let nav = report
            .trace
            .fetches
            .iter()
            .find(|f| f.url.ends_with("/index.html"))
            .unwrap();
        assert_eq!(nav.outcome, FetchOutcome::NotModified);
        assert_eq!(report.sw_hits, 2); // a.css, b.js
    }

    #[test]
    fn session_capture_closes_the_js_gap() {
        let up = upstream(HeaderMode::CatalystWithCapture);
        let mut browser = Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: true,
            session: Some("alice".to_owned()),
            ..Default::default()
        });
        browser.load(&up, cond(), &base(), 0);
        // Nothing changed after 60 s; now even c.js and d.jpg are in
        // the map (captured on the first visit) → zero RTTs.
        let report = browser.load(&up, cond(), &base(), 60);
        let outcome = |p: &str| {
            report
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap()
                .outcome
        };
        assert_eq!(outcome("/c.js"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(outcome("/d.jpg"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(report.sw_hits, 4);
        assert_eq!(report.network_requests(), 1); // just the base HTML
    }

    #[test]
    fn uncached_browser_always_transfers_everything() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::uncached();
        browser.load(&up, cond(), &base(), 0);
        let second = browser.load(&up, cond(), &base(), 60);
        assert_eq!(second.full_transfers, 5);
        assert_eq!(second.cache_hits + second.sw_hits, 0);
    }

    #[test]
    fn clear_resets_to_cold() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        browser.load(&up, cond(), &base(), 0);
        browser.clear();
        let report = browser.load(&up, cond(), &base(), 60);
        assert_eq!(report.full_transfers, 5);
    }

    #[test]
    fn higher_latency_increases_plt() {
        let up = upstream(HeaderMode::Baseline);
        let fast = NetworkConditions::new(Duration::from_millis(10), 60_000_000);
        let slow = NetworkConditions::new(Duration::from_millis(120), 60_000_000);
        let a = Browser::baseline().load(&up, fast, &base(), 0);
        let b = Browser::baseline().load(&up, slow, &base(), 0);
        assert!(b.plt > a.plt);
    }

    #[test]
    fn lower_bandwidth_increases_plt() {
        let up = upstream(HeaderMode::Baseline);
        let fast = NetworkConditions::new(Duration::from_millis(40), 60_000_000);
        let slow = NetworkConditions::new(Duration::from_millis(40), 2_000_000);
        let a = Browser::baseline().load(&up, fast, &base(), 0);
        let b = Browser::baseline().load(&up, slow, &base(), 0);
        assert!(b.plt > a.plt);
    }

    #[test]
    fn recorder_sees_one_fetch_pair_per_resource() {
        use cachecatalyst_telemetry::{Event, FetchKind, MemoryRecorder};

        let up = upstream(HeaderMode::Baseline);
        let recorder = Arc::new(MemoryRecorder::new());
        let mut browser = Browser::baseline().with_recorder(recorder.clone());
        let report = browser.load(&up, cond(), &base(), 7);

        let events = recorder.take();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| matches!(e, Event::FetchEnd { .. }))
            .collect();
        let starts = events
            .iter()
            .filter(|e| matches!(e, Event::FetchStart { .. }))
            .count();
        assert_eq!(ends.len(), report.trace.fetches.len());
        assert_eq!(starts, ends.len());
        // The page-load span brackets the fetches and carries the
        // resource count the per-fetch events sum to.
        assert!(matches!(
            events.first(),
            Some(Event::PageLoadStart { t_ms, .. }) if *t_ms == 7000.0
        ));
        let Some(Event::PageLoadEnd {
            resources, plt_ms, ..
        }) = events
            .iter()
            .find(|e| matches!(e, Event::PageLoadEnd { .. }))
        else {
            panic!("missing page_load_end");
        };
        assert_eq!(*resources, ends.len());
        assert!((plt_ms - report.plt_ms()).abs() < 1e-9);
        // Cold baseline load: 5 full fetches, all stored in the cache.
        assert!(ends.iter().all(|e| matches!(
            e,
            Event::FetchEnd { outcome: FetchKind::FullFetch, rtts, .. } if *rtts >= 1
        )));
        assert!(matches!(
            events.last(),
            Some(Event::CacheDelta {
                stores: 5,
                misses: 5,
                ..
            })
        ));
    }

    #[test]
    fn recorder_outcomes_follow_the_cache_state() {
        use cachecatalyst_telemetry::{Event, FetchKind, MemoryRecorder};

        let up = upstream(HeaderMode::Catalyst);
        let recorder = Arc::new(MemoryRecorder::new());
        let mut browser = Browser::catalyst().with_recorder(recorder.clone());
        browser.load(&up, cond(), &base(), 0);
        recorder.take();
        browser.load(&up, cond(), &base(), 60);

        let outcome = |suffix: &str| {
            recorder
                .snapshot()
                .iter()
                .find_map(|e| match e {
                    Event::FetchEnd { url, outcome, .. } if url.ends_with(suffix) => Some(*outcome),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("{suffix} missing"))
        };
        // Unchanged revisit: the map answers for a.css/b.js, the
        // navigation revalidates.
        assert_eq!(outcome("/a.css"), FetchKind::EtagConfigHit);
        assert_eq!(outcome("/b.js"), FetchKind::EtagConfigHit);
        assert_eq!(outcome("/index.html"), FetchKind::Conditional304);
    }

    #[test]
    fn loads_are_deterministic() {
        let up = upstream(HeaderMode::Catalyst);
        let run = || {
            let mut b = Browser::catalyst();
            b.load(&up, cond(), &base(), 0);
            b.load(&up, cond(), &base(), 7200).plt
        };
        assert_eq!(run(), run());
    }
}
