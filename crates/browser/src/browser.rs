//! The browser facade: persistent state across visits.

use cachecatalyst_catalyst::ServiceWorker;
use cachecatalyst_httpcache::HttpCache;
use cachecatalyst_httpwire::Url;
use cachecatalyst_netsim::NetworkConditions;

use crate::engine::{Engine, EngineConfig, LoadReport};
use crate::upstream::Upstream;

/// A browser profile: an HTTP cache and a service-worker registration
/// that persist across page loads, plus the engine configuration.
#[derive(Clone)]
pub struct Browser {
    pub cache: HttpCache,
    pub sw: ServiceWorker,
    pub config: EngineConfig,
}

impl Browser {
    /// A browser with the given engine configuration and a cold cache.
    pub fn new(config: EngineConfig) -> Browser {
        Browser {
            cache: HttpCache::unbounded(),
            sw: ServiceWorker::new(),
            config,
        }
    }

    /// Status-quo browser: classic HTTP cache, no service worker.
    pub fn baseline() -> Browser {
        Browser::new(EngineConfig {
            use_http_cache: true,
            use_service_worker: false,
            ..Default::default()
        })
    }

    /// CacheCatalyst browser: the service worker fronts all fetches.
    pub fn catalyst() -> Browser {
        Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: true,
            ..Default::default()
        })
    }

    /// A browser that never reuses anything (cold path / lower bound).
    pub fn uncached() -> Browser {
        Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: false,
            ..Default::default()
        })
    }

    /// Loads `base_url` from `upstream` under `cond`, with the visit
    /// starting at absolute site time `t_secs`. Cache and SW state
    /// carry over to the next call — call repeatedly to model revisits.
    pub fn load(
        &mut self,
        upstream: &dyn Upstream,
        cond: NetworkConditions,
        base_url: &Url,
        t_secs: i64,
    ) -> LoadReport {
        let report = Engine::new(
            upstream,
            cond,
            &self.config,
            &mut self.cache,
            &mut self.sw,
            t_secs,
        )
        .load(base_url);
        // Remember the visit so push-if-changed comparators can use
        // the `x-cc-last-visit` announcement on the next load.
        self.config.last_visit = Some(t_secs);
        report
    }

    /// Drops all cached state (a fresh profile).
    pub fn clear(&mut self) {
        self.cache.clear();
        self.sw.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upstream::SingleOrigin;
    use cachecatalyst_netsim::FetchOutcome;
    use cachecatalyst_origin::{HeaderMode, OriginServer};
    use cachecatalyst_webmodel::{example_site, revisit_delay};
    use std::sync::Arc;
    use std::time::Duration;

    fn cond() -> NetworkConditions {
        NetworkConditions::five_g_median()
    }

    fn upstream(mode: HeaderMode) -> SingleOrigin {
        SingleOrigin(Arc::new(OriginServer::new(example_site(), mode)))
    }

    fn base() -> Url {
        Url::parse("http://example.org/index.html").unwrap()
    }

    #[test]
    fn cold_load_fetches_all_five_resources() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        let report = browser.load(&up, cond(), &base(), 0);
        assert_eq!(report.trace.fetches.len(), 5, "{:#?}", report.trace);
        assert_eq!(report.full_transfers, 5);
        assert_eq!(report.network_requests(), 5);
        assert!(report.plt_ms() > 0.0);
    }

    #[test]
    fn dependency_chain_orders_discovery() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        let report = browser.load(&up, cond(), &base(), 0);
        let when = |p: &str| {
            report
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap_or_else(|| panic!("{p} missing"))
                .discovered
        };
        // index → (a.css, b.js) → c.js → d.jpg
        assert!(when("/a.css") > when("/index.html"));
        assert_eq!(when("/a.css"), when("/b.js"));
        assert!(when("/c.js") > when("/b.js"));
        assert!(when("/d.jpg") > when("/c.js"));
    }

    #[test]
    fn figure_1b_baseline_revisit() {
        // Figure 1(b): +2h revisit with classic caching. a.css is fresh
        // (max-age 1w) → cache hit; b.js revalidates → 304; c.js is
        // fresh (max-age 1d) → hit; d.jpg expired and changed → full;
        // index.html is no-cache and changed → full.
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        let first = browser.load(&up, cond(), &base(), 0);
        let t1 = revisit_delay().as_secs() as i64;
        let second = browser.load(&up, cond(), &base(), t1);

        let outcome = |p: &str| {
            second
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap()
                .outcome
        };
        assert_eq!(outcome("/a.css"), FetchOutcome::CacheHit);
        assert_eq!(outcome("/b.js"), FetchOutcome::NotModified);
        assert_eq!(outcome("/c.js"), FetchOutcome::CacheHit);
        assert_eq!(outcome("/d.jpg"), FetchOutcome::FullTransfer);
        assert_eq!(outcome("/index.html"), FetchOutcome::FullTransfer);
        assert!(second.plt < first.plt, "warm load must be faster");
    }

    #[test]
    fn figure_1c_catalyst_revisit() {
        // Figure 1(c): the optimized revisit. Unchanged resources
        // (a.css, b.js, c.js) are served by the SW with zero RTTs;
        // d.jpg changed → full fetch; index.html changed → full fetch.
        let up = upstream(HeaderMode::Catalyst);
        let mut browser = Browser::catalyst();
        browser.load(&up, cond(), &base(), 0);
        let t1 = revisit_delay().as_secs() as i64;
        let second = browser.load(&up, cond(), &base(), t1);

        let outcome = |p: &str| {
            second
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap()
                .outcome
        };
        assert_eq!(outcome("/a.css"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(outcome("/b.js"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(outcome("/d.jpg"), FetchOutcome::FullTransfer);
        assert_eq!(outcome("/index.html"), FetchOutcome::FullTransfer);
        // c.js is JS-discovered: static extraction does not cover it,
        // so it still needs a revalidation round trip.
        assert_eq!(outcome("/c.js"), FetchOutcome::NotModified);
        assert_eq!(second.sw_hits, 2);
    }

    #[test]
    fn catalyst_with_capture_beats_baseline_on_revisit() {
        let up_base = upstream(HeaderMode::Baseline);
        let up_cat = upstream(HeaderMode::CatalystWithCapture);
        let t1 = revisit_delay().as_secs() as i64;

        let mut b = Browser::baseline();
        b.load(&up_base, cond(), &base(), 0);
        let baseline = b.load(&up_base, cond(), &base(), t1);

        let mut c = Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: true,
            session: Some("s1".to_owned()),
            ..Default::default()
        });
        c.load(&up_cat, cond(), &base(), 0);
        let catalyst = c.load(&up_cat, cond(), &base(), t1);

        assert!(
            catalyst.plt < baseline.plt,
            "catalyst {:?} vs baseline {:?}",
            catalyst.plt,
            baseline.plt
        );
        assert!(catalyst.network_requests() <= baseline.network_requests());
    }

    #[test]
    fn plain_catalyst_ties_baseline_when_js_chain_dominates() {
        // On the Figure-1 example page the critical path runs through
        // JS-discovered resources, which static extraction cannot map
        // — so plain catalyst neither wins nor loses meaningfully on
        // this page. (Capture mode, and the statically-discovered
        // majority on realistic pages, provide the wins.)
        let up_base = upstream(HeaderMode::Baseline);
        let up_cat = upstream(HeaderMode::Catalyst);
        let t1 = revisit_delay().as_secs() as i64;

        let mut b = Browser::baseline();
        b.load(&up_base, cond(), &base(), 0);
        let baseline = b.load(&up_base, cond(), &base(), t1);

        let mut c = Browser::catalyst();
        c.load(&up_cat, cond(), &base(), 0);
        let catalyst = c.load(&up_cat, cond(), &base(), t1);

        let ratio = catalyst.plt.as_secs_f64() / baseline.plt.as_secs_f64();
        assert!((0.95..=1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn unchanged_page_revisit_is_nearly_free_with_catalyst() {
        // Revisit after 1 minute: nothing changed. The only network
        // round trips are the base HTML (304 + fresh config) — every
        // subresource is served locally... except JS-discovered ones.
        let up = upstream(HeaderMode::Catalyst);
        let mut browser = Browser::catalyst();
        browser.load(&up, cond(), &base(), 0);
        let report = browser.load(&up, cond(), &base(), 60);
        let nav = report
            .trace
            .fetches
            .iter()
            .find(|f| f.url.ends_with("/index.html"))
            .unwrap();
        assert_eq!(nav.outcome, FetchOutcome::NotModified);
        assert_eq!(report.sw_hits, 2); // a.css, b.js
    }

    #[test]
    fn session_capture_closes_the_js_gap() {
        let up = upstream(HeaderMode::CatalystWithCapture);
        let mut browser = Browser::new(EngineConfig {
            use_http_cache: false,
            use_service_worker: true,
            session: Some("alice".to_owned()),
            ..Default::default()
        });
        browser.load(&up, cond(), &base(), 0);
        // Nothing changed after 60 s; now even c.js and d.jpg are in
        // the map (captured on the first visit) → zero RTTs.
        let report = browser.load(&up, cond(), &base(), 60);
        let outcome = |p: &str| {
            report
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap()
                .outcome
        };
        assert_eq!(outcome("/c.js"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(outcome("/d.jpg"), FetchOutcome::ServiceWorkerHit);
        assert_eq!(report.sw_hits, 4);
        assert_eq!(report.network_requests(), 1); // just the base HTML
    }

    #[test]
    fn uncached_browser_always_transfers_everything() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::uncached();
        browser.load(&up, cond(), &base(), 0);
        let second = browser.load(&up, cond(), &base(), 60);
        assert_eq!(second.full_transfers, 5);
        assert_eq!(second.cache_hits + second.sw_hits, 0);
    }

    #[test]
    fn clear_resets_to_cold() {
        let up = upstream(HeaderMode::Baseline);
        let mut browser = Browser::baseline();
        browser.load(&up, cond(), &base(), 0);
        browser.clear();
        let report = browser.load(&up, cond(), &base(), 60);
        assert_eq!(report.full_transfers, 5);
    }

    #[test]
    fn higher_latency_increases_plt() {
        let up = upstream(HeaderMode::Baseline);
        let fast = NetworkConditions::new(Duration::from_millis(10), 60_000_000);
        let slow = NetworkConditions::new(Duration::from_millis(120), 60_000_000);
        let a = Browser::baseline().load(&up, fast, &base(), 0);
        let b = Browser::baseline().load(&up, slow, &base(), 0);
        assert!(b.plt > a.plt);
    }

    #[test]
    fn lower_bandwidth_increases_plt() {
        let up = upstream(HeaderMode::Baseline);
        let fast = NetworkConditions::new(Duration::from_millis(40), 60_000_000);
        let slow = NetworkConditions::new(Duration::from_millis(40), 2_000_000);
        let a = Browser::baseline().load(&up, fast, &base(), 0);
        let b = Browser::baseline().load(&up, slow, &base(), 0);
        assert!(b.plt > a.plt);
    }

    #[test]
    fn loads_are_deterministic() {
        let up = upstream(HeaderMode::Catalyst);
        let run = || {
            let mut b = Browser::catalyst();
            b.load(&up, cond(), &base(), 0);
            b.load(&up, cond(), &base(), 7200).plt
        };
        assert_eq!(run(), run());
    }
}
