//! The browser's view of "the network's far side".
//!
//! In the discrete-event path, server compute is instantaneous (its
//! cost is modeled by the engine's think-time parameter) and the
//! response bytes then travel through the simulated links. [`Upstream`]
//! abstracts who produces the response: a single origin, a multi-origin
//! map (for third-party experiments), or a proxy from
//! `cachecatalyst-proxies`.

use std::collections::HashMap;
use std::sync::Arc;

use cachecatalyst_httpwire::{Request, Response, StatusCode};
use cachecatalyst_origin::OriginServer;

/// Produces responses for requests addressed to `host`.
pub trait Upstream {
    /// Handles `req` for `host` at virtual time `t_secs`.
    fn handle(&self, host: &str, req: &Request, t_secs: i64) -> Response;
}

/// A single origin serving every host (the paper's cloned-onto-one-
/// server methodology).
pub struct SingleOrigin(pub Arc<OriginServer>);

impl Upstream for SingleOrigin {
    fn handle(&self, _host: &str, req: &Request, t_secs: i64) -> Response {
        self.0.handle(req, t_secs)
    }
}

/// Routes by host; unknown hosts get `502 Bad Gateway`.
#[derive(Default)]
pub struct MultiOrigin {
    origins: HashMap<String, Arc<OriginServer>>,
}

impl MultiOrigin {
    pub fn new() -> MultiOrigin {
        MultiOrigin::default()
    }

    pub fn add(&mut self, host: &str, origin: Arc<OriginServer>) -> &mut Self {
        self.origins.insert(host.to_ascii_lowercase(), origin);
        self
    }
}

/// Pins the server-side clock: requests are handled at a fixed
/// virtual time regardless of when the client visits.
///
/// This reproduces the paper's evaluation methodology exactly: the
/// authors cloned each homepage once and aged only the *client* (by
/// advancing the system clock), so the served content never changed
/// between the first visit and the reload — only TTLs expired. Wrap
/// any upstream in this to separate "revalidation cost" effects from
/// "content actually churned" effects.
pub struct FrozenUpstream<U> {
    inner: U,
    frozen_t: i64,
}

impl<U: Upstream> FrozenUpstream<U> {
    pub fn new(inner: U, frozen_t: i64) -> FrozenUpstream<U> {
        FrozenUpstream { inner, frozen_t }
    }
}

impl<U: Upstream> Upstream for FrozenUpstream<U> {
    fn handle(&self, host: &str, req: &Request, _t_secs: i64) -> Response {
        self.inner.handle(host, req, self.frozen_t)
    }
}

impl Upstream for MultiOrigin {
    fn handle(&self, host: &str, req: &Request, t_secs: i64) -> Response {
        match self.origins.get(&host.to_ascii_lowercase()) {
            Some(origin) => origin.handle(req, t_secs),
            None => Response::empty(StatusCode::BAD_GATEWAY),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachecatalyst_origin::HeaderMode;
    use cachecatalyst_webmodel::example_site;

    #[test]
    fn single_origin_ignores_host() {
        let up = SingleOrigin(Arc::new(OriginServer::new(
            example_site(),
            HeaderMode::Baseline,
        )));
        let resp = up.handle("anything.example", &Request::get("/a.css"), 0);
        assert_eq!(resp.status, StatusCode::OK);
    }

    #[test]
    fn multi_origin_routes_and_rejects() {
        let mut up = MultiOrigin::new();
        up.add(
            "Example.ORG",
            Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline)),
        );
        assert_eq!(
            up.handle("example.org", &Request::get("/a.css"), 0).status,
            StatusCode::OK
        );
        assert_eq!(
            up.handle("unknown.example", &Request::get("/a.css"), 0)
                .status,
            StatusCode::BAD_GATEWAY
        );
    }
}
