//! One configuration type for every client.
//!
//! [`Browser`](crate::Browser), [`Engine`](crate::Engine) and the
//! live loader each used to grow their own `with_recorder` /
//! `with_span_sink` / `with_dialer` / retry-knob methods, so wiring
//! observability through a topology meant learning three slightly
//! different surfaces. [`ClientOptions`] is the one bag all of them
//! (and the edge tier, which drives clients of its own) accept:
//! build it once, hand it to whichever client sits at that position.
//!
//! Every field is optional; an empty `ClientOptions::new()` changes
//! nothing. Resilience knobs (`fault_plan`, `max_retries`,
//! `retry_base`, `fetch_timeout`) overlay the corresponding
//! [`EngineConfig`] fields via [`ClientOptions::apply_to`].

use std::sync::Arc;
use std::time::Duration;

use cachecatalyst_netsim::FaultPlan;
use cachecatalyst_telemetry::span::SpanSink;
use cachecatalyst_telemetry::Recorder;

use crate::engine::EngineConfig;

/// Shared observability + resilience configuration for all clients.
///
/// ```
/// use cachecatalyst_browser::{Browser, ClientOptions};
/// use cachecatalyst_telemetry::MemoryRecorder;
/// use std::sync::Arc;
///
/// let recorder = Arc::new(MemoryRecorder::new());
/// let opts = ClientOptions::new()
///     .recorder(recorder.clone())
///     .max_retries(5);
/// let browser = Browser::catalyst().with_options(&opts);
/// ```
#[derive(Clone, Default)]
pub struct ClientOptions {
    /// Event sink for page-load traces and cache-decision audits.
    pub recorder: Option<Arc<dyn Recorder>>,
    /// Span sink for sampled distributed traces.
    pub spans: Option<Arc<SpanSink>>,
    /// Deterministic fault injection on the client's network path.
    pub fault_plan: Option<FaultPlan>,
    /// Retry budget per request (overlay; `None` keeps the default).
    pub max_retries: Option<u32>,
    /// First backoff step, doubling per attempt (overlay).
    pub retry_base: Option<Duration>,
    /// Per-fetch deadline before an attempt is abandoned (overlay).
    pub fetch_timeout: Option<Duration>,
    /// Replacement transport for the live loader (ignored by the
    /// discrete-event clients, which fetch through an `Upstream`).
    #[cfg(feature = "aio")]
    pub dialer: Option<crate::live::Dialer>,
}

impl ClientOptions {
    /// Empty options: applying them changes nothing.
    pub fn new() -> ClientOptions {
        ClientOptions::default()
    }

    /// Attach an event sink; loads emit page-load traces through it.
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> ClientOptions {
        self.recorder = Some(recorder);
        self
    }

    /// Attach a span sink; sampled loads record distributed traces.
    pub fn span_sink(mut self, spans: Arc<SpanSink>) -> ClientOptions {
        self.spans = Some(spans);
        self
    }

    /// Arm deterministic fault injection on the network path.
    pub fn fault_plan(mut self, plan: FaultPlan) -> ClientOptions {
        self.fault_plan = Some(plan);
        self
    }

    /// Override the per-request retry budget.
    pub fn max_retries(mut self, retries: u32) -> ClientOptions {
        self.max_retries = Some(retries);
        self
    }

    /// Override the first backoff step (doubles per attempt).
    pub fn retry_base(mut self, base: Duration) -> ClientOptions {
        self.retry_base = Some(base);
        self
    }

    /// Override the per-fetch deadline.
    pub fn fetch_timeout(mut self, timeout: Duration) -> ClientOptions {
        self.fetch_timeout = Some(timeout);
        self
    }

    /// Replace the live loader's transport.
    #[cfg(feature = "aio")]
    pub fn dialer(mut self, dialer: crate::live::Dialer) -> ClientOptions {
        self.dialer = Some(dialer);
        self
    }

    /// Overlays the resilience fields onto an [`EngineConfig`]: each
    /// `Some` replaces the config's value, each `None` leaves it
    /// alone. Observability fields don't live in the config and are
    /// applied by the client's `with_options`.
    pub fn apply_to(&self, config: &mut EngineConfig) {
        if let Some(plan) = self.fault_plan {
            config.fault_plan = Some(plan);
        }
        if let Some(retries) = self.max_retries {
            config.max_retries = retries;
        }
        if let Some(base) = self.retry_base {
            config.retry_base = base;
        }
        if let Some(timeout) = self.fetch_timeout {
            config.fetch_timeout = timeout;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_options_change_nothing() {
        let mut config = EngineConfig::default();
        let reference = EngineConfig::default();
        ClientOptions::new().apply_to(&mut config);
        assert_eq!(config.max_retries, reference.max_retries);
        assert_eq!(config.retry_base, reference.retry_base);
        assert_eq!(config.fetch_timeout, reference.fetch_timeout);
        assert!(config.fault_plan.is_none());
    }

    #[test]
    fn set_fields_overlay_and_unset_fields_keep_defaults() {
        let mut config = EngineConfig::default();
        let default_timeout = config.fetch_timeout;
        ClientOptions::new()
            .fault_plan(FaultPlan::new(9))
            .max_retries(7)
            .retry_base(Duration::from_millis(5))
            .apply_to(&mut config);
        assert_eq!(config.fault_plan, Some(FaultPlan::new(9)));
        assert_eq!(config.max_retries, 7);
        assert_eq!(config.retry_base, Duration::from_millis(5));
        assert_eq!(config.fetch_timeout, default_timeout);
    }
}
