//! Live page loads over real byte streams (feature `aio`).
//!
//! The same browser semantics as the discrete-event engine — per-host
//! connection pools of six, parse-driven discovery, JS-executed
//! fetches, HTTP-cache or service-worker serving — but executed in
//! wall-clock time over any tokio transport: loopback TCP, the
//! emulated access link from `cachecatalyst_netsim::emu`, or anything
//! a [`Dialer`] produces. Used by the end-to-end tests and by the
//! sim-vs-live cross-validation experiment (E15): the simulator's PLT
//! prediction is checked against an actual protocol execution.

use std::collections::HashMap;
use std::future::Future;
use std::pin::Pin;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cachecatalyst_catalyst::{ServiceWorker, SwDecision};
use cachecatalyst_httpcache::{HttpCache, Lookup};
use cachecatalyst_httpwire::aio::ClientConn;
use cachecatalyst_httpwire::{HeaderName, Request, Response, StatusCode, Url};
use cachecatalyst_netsim::{FetchOutcome, FetchTrace, LoadTrace, SimTime};
use cachecatalyst_telemetry::{Event, Recorder};
use cachecatalyst_webmodel::extract::{extract_css_links, extract_html_links};
use cachecatalyst_webmodel::{jsdialect, ResourceKind};
use tokio::io::{AsyncRead, AsyncWrite};
use tokio::sync::{Mutex, Semaphore};
use tokio::task::JoinSet;

/// Anything a connection can run over.
pub trait ByteStream: AsyncRead + AsyncWrite + Unpin + Send {}
impl<T: AsyncRead + AsyncWrite + Unpin + Send> ByteStream for T {}

/// Opens a byte stream to `host`. Implementations decide what that
/// means: TCP dial, an emulated link to an in-process origin, …
pub type Dialer = Arc<
    dyn Fn(String) -> Pin<Box<dyn Future<Output = std::io::Result<Box<dyn ByteStream>>> + Send>>
        + Send
        + Sync,
>;

/// Serving mode of the live browser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveMode {
    /// Classic HTTP cache.
    Baseline,
    /// CacheCatalyst service worker.
    Catalyst,
    /// No reuse.
    Uncached,
}

/// The result of one live page load.
#[derive(Debug, Clone)]
pub struct LiveReport {
    pub trace: LoadTrace,
    pub plt: Duration,
    pub network_requests: usize,
    pub sw_hits: usize,
    pub cache_hits: usize,
    /// Round trips that failed (I/O error or timeout) and were retried.
    pub retries: u32,
}

struct PoolState {
    idle: Vec<ClientConn<Box<dyn ByteStream>>>,
}

/// A live browser profile. State persists across loads, like
/// [`crate::Browser`].
pub struct LiveBrowser {
    dialer: Dialer,
    mode: LiveMode,
    cache: Arc<Mutex<HttpCache>>,
    sw: Arc<Mutex<ServiceWorker>>,
    pools: Arc<Mutex<HashMap<String, Arc<HostPool>>>>,
    recorder: Option<Arc<dyn Recorder>>,
    /// Virtual seconds used for cache freshness decisions.
    pub now_secs: i64,
    /// Parse/exec pacing, matching the simulator's defaults.
    pub parse_base: Duration,
    pub exec_base: Duration,
    /// Per-round-trip deadline; a server that stalls past it costs
    /// one retry instead of hanging the page load.
    pub fetch_timeout: Duration,
    /// Failed round trips are redialed at most this many times.
    pub max_retries: u32,
    /// First backoff step; doubles per attempt.
    pub retry_base: Duration,
}

struct HostPool {
    permits: Semaphore,
    state: Mutex<PoolState>,
}

impl LiveBrowser {
    pub fn new(dialer: Dialer, mode: LiveMode) -> LiveBrowser {
        LiveBrowser {
            dialer,
            mode,
            cache: Arc::new(Mutex::new(HttpCache::unbounded())),
            sw: Arc::new(Mutex::new(ServiceWorker::new())),
            pools: Arc::new(Mutex::new(HashMap::new())),
            recorder: None,
            now_secs: 0,
            parse_base: Duration::from_millis(1),
            exec_base: Duration::from_millis(2),
            fetch_timeout: Duration::from_secs(3),
            max_retries: 3,
            retry_base: Duration::from_millis(25),
        }
    }

    /// Replaces the dialer (e.g. to reconnect with a different link or
    /// server clock), keeping cache and service-worker state but
    /// dropping pooled connections — idle sockets would not survive
    /// the pause between visits anyway.
    pub fn with_dialer(self, dialer: Dialer) -> LiveBrowser {
        LiveBrowser {
            dialer,
            pools: Arc::new(Mutex::new(HashMap::new())),
            ..self
        }
    }

    /// Applies the shared [`ClientOptions`](crate::ClientOptions):
    /// the recorder attaches (live loads then emit the same
    /// page-load/fetch event stream as the discrete-event browser,
    /// timestamped in wall milliseconds from `now_secs`), the retry
    /// knobs overlay their fields, and a dialer replaces the
    /// transport as [`LiveBrowser::with_dialer`] would. The span
    /// sink and fault plan are discrete-event concerns and are
    /// ignored here (faults live on the server side of a live run).
    pub fn with_options(mut self, opts: &crate::ClientOptions) -> LiveBrowser {
        if let Some(recorder) = &opts.recorder {
            self.recorder = Some(Arc::clone(recorder));
        }
        if let Some(retries) = opts.max_retries {
            self.max_retries = retries;
        }
        if let Some(base) = opts.retry_base {
            self.retry_base = base;
        }
        if let Some(timeout) = opts.fetch_timeout {
            self.fetch_timeout = timeout;
        }
        if let Some(dialer) = &opts.dialer {
            self = self.with_dialer(Arc::clone(dialer));
        }
        self
    }

    /// Loads `base_url` to completion, returning wall-clock timings.
    pub async fn load(&mut self, base_url: &Url) -> std::io::Result<LiveReport> {
        let t0 = Instant::now();
        let mut trace = LoadTrace::default();
        let mut requested: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut join: JoinSet<std::io::Result<FetchDone>> = JoinSet::new();

        requested.insert(base_url.to_string());
        join.spawn(self.fetch_task(base_url.clone(), true, t0));

        let mut network_requests = 0;
        let mut sw_hits = 0;
        let mut cache_hits = 0;
        let mut retries = 0;
        while let Some(res) = join.join_next().await {
            let done = res.map_err(|e| std::io::Error::other(e.to_string()))??;
            retries += done.retries;
            match done.outcome {
                FetchOutcome::ServiceWorkerHit => sw_hits += 1,
                FetchOutcome::CacheHit => cache_hits += 1,
                _ => network_requests += 1,
            }
            trace.fetches.push(FetchTrace {
                url: done.url.to_string(),
                discovered: SimTime::from_nanos(done.discovered.as_nanos() as u64),
                started: SimTime::from_nanos(done.discovered.as_nanos() as u64),
                completed: SimTime::from_nanos(done.completed.as_nanos() as u64),
                outcome: done.outcome,
                bytes_down: done.bytes_down,
                bytes_up: done.bytes_up,
                // Live fetches reuse pooled keep-alive connections:
                // one request/response round trip per network fetch.
                rtts: done.outcome.used_network() as u32,
                // The live path doesn't observe intra-request phase
                // boundaries; HAR export degrades gracefully.
                upload_done: None,
                response_start: None,
            });
            for link in done.links {
                if requested.insert(link.to_string()) {
                    join.spawn(self.fetch_task(link, false, t0));
                }
            }
        }

        let plt = trace
            .fetches
            .iter()
            .map(|f| f.completed)
            .max()
            .unwrap_or(SimTime::ZERO);
        let report = LiveReport {
            plt: Duration::from_nanos(plt.as_nanos()),
            trace,
            network_requests,
            sw_hits,
            cache_hits,
            retries,
        };
        if let Some(recorder) = &self.recorder {
            self.emit_load_events(recorder.as_ref(), base_url, &report);
        }
        Ok(report)
    }

    /// Replays one finished live load into the recorder: the same
    /// event stream the discrete-event browser emits, minus the
    /// cache-delta and audit records (the live path does not observe
    /// them). The time base is `now_secs × 1000` plus wall-clock
    /// offsets into the load.
    fn emit_load_events(&self, recorder: &dyn Recorder, base_url: &Url, report: &LiveReport) {
        let page = base_url.to_string();
        let base_ms = self.now_secs as f64 * 1000.0;
        recorder.record(&Event::PageLoadStart {
            page: page.clone(),
            t_ms: base_ms,
        });
        for f in &report.trace.fetches {
            recorder.record(&Event::FetchStart {
                url: f.url.clone(),
                t_ms: base_ms + f.started.as_millis_f64(),
            });
            recorder.record(&Event::FetchEnd {
                url: f.url.clone(),
                t_ms: base_ms + f.completed.as_millis_f64(),
                outcome: crate::browser::fetch_kind(f.outcome),
                bytes_down: f.bytes_down,
                bytes_up: f.bytes_up,
                rtts: f.rtts,
            });
        }
        recorder.record(&Event::PageLoadEnd {
            page,
            t_ms: base_ms + report.plt.as_secs_f64() * 1000.0,
            resources: report.trace.fetches.len(),
            plt_ms: report.plt.as_secs_f64() * 1000.0,
        });
        if report.retries > 0 {
            recorder.record(&Event::FaultSummary {
                t_ms: base_ms + report.plt.as_secs_f64() * 1000.0,
                faults_injected: 0,
                retries: report.retries,
                degraded: 0,
            });
        }
    }

    fn fetch_task(
        &self,
        url: Url,
        is_navigation: bool,
        t0: Instant,
    ) -> impl Future<Output = std::io::Result<FetchDone>> + Send + 'static {
        let dialer = Arc::clone(&self.dialer);
        let mode = self.mode;
        let cache = Arc::clone(&self.cache);
        let sw = Arc::clone(&self.sw);
        let pools = Arc::clone(&self.pools);
        let now_secs = self.now_secs;
        let parse_base = self.parse_base;
        let exec_base = self.exec_base;
        let fetch_timeout = self.fetch_timeout;
        let max_retries = self.max_retries;
        let retry_base = self.retry_base;
        async move {
            let mut retries = 0u32;
            let discovered = t0.elapsed();
            let path = url.path().to_owned();
            let mut req = Request::get(&url.target().to_string())
                .with_header(HeaderName::HOST, &url.authority())
                .with_header(HeaderName::USER_AGENT, "cachecatalyst-live/0.1");

            // --- serving decision (mirrors the simulator engine) ---
            let mut outcome = FetchOutcome::FullTransfer;
            let mut local: Option<Response> = None;
            match mode {
                LiveMode::Catalyst => {
                    if is_navigation {
                        let guard = sw.lock().await;
                        if let Some(tag) = guard.cached_etag(&url.to_string()) {
                            let tag = tag.to_string();
                            drop(guard);
                            req.headers.insert(HeaderName::IF_NONE_MATCH, &tag);
                        }
                    } else {
                        match sw.lock().await.intercept(&url.to_string(), &path) {
                            SwDecision::ServeLocal(resp) => {
                                outcome = FetchOutcome::ServiceWorkerHit;
                                local = Some(resp);
                            }
                            SwDecision::Forward { if_none_match } => {
                                if let Some(tag) = if_none_match {
                                    req.headers
                                        .insert(HeaderName::IF_NONE_MATCH, &tag.to_string());
                                }
                            }
                        }
                    }
                }
                LiveMode::Baseline => {
                    match cache
                        .lock()
                        .await
                        .lookup_for(&url.to_string(), &req, now_secs)
                    {
                        Lookup::Fresh(resp) => {
                            outcome = FetchOutcome::CacheHit;
                            local = Some(resp);
                        }
                        Lookup::Stale {
                            etag,
                            last_modified,
                            ..
                        } => {
                            if let Some(tag) = etag {
                                req.headers.insert(HeaderName::IF_NONE_MATCH, &tag);
                            } else if let Some(lm) = last_modified {
                                req.headers.insert(HeaderName::IF_MODIFIED_SINCE, &lm);
                            }
                        }
                        Lookup::Miss => {}
                    }
                }
                LiveMode::Uncached => {}
            }

            let delivered = match local {
                Some(resp) => resp,
                None => {
                    // --- network fetch through the host pool ---
                    let pool = {
                        let mut pools = pools.lock().await;
                        Arc::clone(pools.entry(url.host().to_owned()).or_insert_with(|| {
                            Arc::new(HostPool {
                                permits: Semaphore::new(6),
                                state: Mutex::new(PoolState { idle: Vec::new() }),
                            })
                        }))
                    };
                    let _permit = pool.permits.acquire().await.expect("semaphore not closed");
                    // Bounded retry with exponential backoff: an I/O
                    // error, a malformed response, or a round trip
                    // that outlives `fetch_timeout` costs one attempt
                    // and a fresh dial — the failed connection is
                    // never returned to the pool.
                    let mut attempt = 0u32;
                    let resp = loop {
                        let pooled = {
                            let mut state = pool.state.lock().await;
                            state.idle.pop()
                        };
                        let result = async {
                            let mut conn = match pooled {
                                Some(conn) => conn,
                                None => {
                                    let stream = (dialer)(url.host().to_owned()).await?;
                                    ClientConn::new(stream)
                                }
                            };
                            let resp = conn
                                .round_trip(&req)
                                .await
                                .map_err(|e| std::io::Error::other(e.to_string()))?;
                            Ok::<_, std::io::Error>((conn, resp))
                        };
                        match tokio::time::timeout(fetch_timeout, result).await {
                            Ok(Ok((conn, resp))) => {
                                pool.state.lock().await.idle.push(conn);
                                break resp;
                            }
                            Ok(Err(e)) if attempt >= max_retries => return Err(e),
                            Err(_) if attempt >= max_retries => {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::TimedOut,
                                    format!("{url}: no response within {fetch_timeout:?}"),
                                ));
                            }
                            Ok(Err(_)) | Err(_) => {
                                attempt += 1;
                                retries += 1;
                                let backoff = retry_base * 2u32.pow(attempt.min(10) - 1);
                                tokio::time::sleep(backoff).await;
                            }
                        }
                    };

                    // --- post-processing (store / refresh) ---
                    match mode {
                        LiveMode::Catalyst => {
                            let mut guard = sw.lock().await;
                            if is_navigation {
                                guard.on_navigation(&resp);
                            }
                            if resp.status == StatusCode::NOT_MODIFIED {
                                outcome = FetchOutcome::NotModified;
                            }
                            guard.on_response(&url.to_string(), &resp)
                        }
                        LiveMode::Baseline => {
                            let mut guard = cache.lock().await;
                            if resp.status == StatusCode::NOT_MODIFIED {
                                outcome = FetchOutcome::NotModified;
                                guard
                                    .update_with_304(&url.to_string(), &resp, now_secs, now_secs)
                                    .unwrap_or(resp)
                            } else {
                                guard.store(&url.to_string(), &req, &resp, now_secs, now_secs);
                                resp
                            }
                        }
                        LiveMode::Uncached => resp,
                    }
                }
            };

            // --- content processing: discover children ---
            let mut links: Vec<Url> = Vec::new();
            if delivered.status.is_success() {
                let kind = ResourceKind::from_path(&path);
                if let Ok(text) = std::str::from_utf8(&delivered.body) {
                    let hrefs: Vec<String> = match kind {
                        ResourceKind::Html => {
                            tokio::time::sleep(parse_base).await;
                            extract_html_links(text)
                                .into_iter()
                                .map(|l| l.href)
                                .collect()
                        }
                        ResourceKind::Css => {
                            tokio::time::sleep(parse_base).await;
                            extract_css_links(text)
                                .into_iter()
                                .map(|l| l.href)
                                .collect()
                        }
                        ResourceKind::Js => {
                            tokio::time::sleep(exec_base).await;
                            jsdialect::evaluate(text)
                        }
                        _ => Vec::new(),
                    };
                    for href in hrefs {
                        if href == cachecatalyst_catalyst::SW_SCRIPT_PATH {
                            continue;
                        }
                        if let Ok(u) = url.join(&href) {
                            links.push(u);
                        }
                    }
                }
            }

            let bytes_down = if outcome.used_network() {
                delivered.body.len() as u64
            } else {
                0
            };
            Ok(FetchDone {
                url,
                discovered,
                completed: t0.elapsed(),
                outcome,
                bytes_down,
                bytes_up: 0,
                links,
                retries,
            })
        }
    }
}

struct FetchDone {
    url: Url,
    discovered: Duration,
    completed: Duration,
    outcome: FetchOutcome,
    bytes_down: u64,
    bytes_up: u64,
    links: Vec<Url>,
    retries: u32,
}
