//! # cachecatalyst-browser
//!
//! A discrete-event page-load engine standing in for the Chrome +
//! Selenium client of the paper's evaluation. It reproduces the
//! behaviour that determines page load time:
//!
//! * per-origin connection pools (6, HTTP/1.1-style) with handshake
//!   costs and keep-alive;
//! * parse-driven dependency resolution (HTML → CSS/JS → images/
//!   fonts), including resources only discoverable by *executing* JS;
//! * the classic HTTP cache ([`cachecatalyst_httpcache`]) and the
//!   CacheCatalyst service worker ([`cachecatalyst_catalyst`]) as
//!   alternative serving paths;
//! * PLT measured as the completion of the last required resource
//!   (the `onLoad` moment used in the paper).
//!
//! The engine runs on the deterministic simulator from
//! [`cachecatalyst_netsim`]; all concurrent transfers share the access
//! link's capacity.

pub mod browser;
pub mod engine;
pub mod har;
pub mod options;
pub mod upstream;

#[cfg(feature = "aio")]
pub mod live;

pub use browser::Browser;
pub use engine::{Engine, EngineConfig, LoadReport};
pub use har::to_har;
#[cfg(feature = "aio")]
pub use live::{LiveBrowser, LiveMode, LiveReport};
pub use options::ClientOptions;
pub use upstream::{FrozenUpstream, MultiOrigin, SingleOrigin, Upstream};
