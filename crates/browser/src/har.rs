//! HAR (HTTP Archive) export of load traces.
//!
//! Emits a minimal but valid HAR 1.2 document so waterfalls from the
//! simulator can be opened in standard tooling (Chrome DevTools'
//! "Import HAR", WebPageTest viewers, `har-analyzer`, …). Hand-rolled
//! JSON: the only string content is URLs and fixed enums, so a small
//! escaper suffices.

use cachecatalyst_netsim::{FetchOutcome, SimTime};

use crate::engine::LoadReport;

/// Renders a [`LoadReport`] as a HAR 1.2 JSON document.
///
/// Virtual time zero is mapped onto `epoch` (an RFC3339 timestamp
/// string, e.g. `"2026-07-06T00:00:00.000Z"`), since the simulation
/// has no wall clock of its own.
pub fn to_har(report: &LoadReport, epoch: &str) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"log\":{\"version\":\"1.2\",");
    out.push_str("\"creator\":{\"name\":\"cachecatalyst\",\"version\":\"0.1.0\"},");
    out.push_str(&format!(
        "\"pages\":[{{\"startedDateTime\":{},\"id\":\"page_1\",\"title\":{},\
         \"pageTimings\":{{\"onContentLoad\":{:.3},\"onLoad\":{:.3}}}}}],",
        json_string(epoch),
        json_string(
            report
                .trace
                .fetches
                .first()
                .map(|f| f.url.as_str())
                .unwrap_or("about:blank")
        ),
        report.fcp.as_millis_f64(),
        report.plt.as_millis_f64(),
    ));
    out.push_str("\"entries\":[");
    for (i, f) in report.trace.fetches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let blocked = ms(f.started, f.discovered);
        // Real phase timings when the engine observed the boundaries
        // (network fetches); local hits degrade to a single `wait`.
        let (send, wait, receive) = match (f.upload_done, f.response_start) {
            (Some(upload_done), Some(response_start)) => (
                ms(upload_done, f.started),
                ms(response_start, upload_done),
                ms(f.completed, response_start),
            ),
            _ => (0.0, ms(f.completed, f.started), 0.0),
        };
        let (status, status_text) = match f.outcome {
            FetchOutcome::NotModified => (304, "Not Modified"),
            _ => (200, "OK"),
        };
        let served_from_cache = !f.outcome.used_network();
        out.push_str(&format!(
            "{{\"pageref\":\"page_1\",\"startedDateTime\":{},\
             \"time\":{:.3},\
             \"request\":{{\"method\":\"GET\",\"url\":{},\"httpVersion\":\"HTTP/1.1\",\
             \"headers\":[],\"queryString\":[],\"cookies\":[],\
             \"headersSize\":-1,\"bodySize\":0}},\
             \"response\":{{\"status\":{status},\"statusText\":{},\
             \"httpVersion\":\"HTTP/1.1\",\"headers\":[],\"cookies\":[],\
             \"content\":{{\"size\":{},\"mimeType\":\"\"}},\
             \"redirectURL\":\"\",\"headersSize\":-1,\"bodySize\":{}}},\
             \"cache\":{{}},\
             \"timings\":{{\"blocked\":{blocked:.3},\"dns\":-1,\"connect\":-1,\
             \"send\":{send:.3},\"wait\":{wait:.3},\"receive\":{receive:.3},\"ssl\":-1}},\
             \"comment\":{}}}",
            json_string(epoch),
            ms(f.completed, f.discovered),
            json_string(&f.url),
            json_string(status_text),
            f.bytes_down,
            f.bytes_down,
            json_string(&format!(
                "outcome={}; servedFromCache={served_from_cache}; rtts={}; t+{:.3}ms",
                f.outcome.tag().trim(),
                f.rtts,
                f.discovered.as_millis_f64()
            )),
        ));
    }
    out.push_str("]}}");
    out
}

fn ms(later: SimTime, earlier: SimTime) -> f64 {
    later.since(earlier).as_secs_f64() * 1000.0
}

/// Escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upstream::SingleOrigin;
    use cachecatalyst_httpwire::Url;
    use cachecatalyst_netsim::NetworkConditions;
    use cachecatalyst_origin::{HeaderMode, OriginServer};
    use cachecatalyst_webmodel::example_site;
    use std::sync::Arc;

    fn report() -> LoadReport {
        let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
        let up = SingleOrigin(origin);
        crate::Browser::baseline().load(
            &up,
            NetworkConditions::five_g_median(),
            &Url::parse("http://example.org/index.html").unwrap(),
            0,
        )
    }

    #[test]
    fn har_contains_all_entries_and_timings() {
        let r = report();
        let har = to_har(&r, "2026-07-06T00:00:00.000Z");
        assert!(har.starts_with("{\"log\":"));
        for p in ["index.html", "a.css", "b.js", "c.js", "d.jpg"] {
            assert!(har.contains(p), "{p} missing");
        }
        assert_eq!(har.matches("\"pageref\":\"page_1\"").count(), 5);
        assert!(har.contains(&format!("\"onLoad\":{:.3}", r.plt.as_millis_f64())));
        // Cold load over keep-alive HTTP/1.1: every entry paid at
        // least the request/response round trip.
        assert_eq!(har.matches("rtts=0").count(), 0, "{har}");
    }

    /// Minimal recursive-descent JSON validator: accepts exactly the
    /// RFC 8259 grammar (minus `\uXXXX` surrogate-pair pairing) and
    /// returns the rest of the input after one value.
    fn json_value(s: &str) -> Result<&str, String> {
        let t = s.trim_start();
        match t.bytes().next() {
            Some(b'{') => json_object(t),
            Some(b'[') => json_array(t),
            Some(b'"') => json_str(t),
            Some(b't') => t.strip_prefix("true").ok_or_else(|| bad(t)),
            Some(b'f') => t.strip_prefix("false").ok_or_else(|| bad(t)),
            Some(b'n') => t.strip_prefix("null").ok_or_else(|| bad(t)),
            Some(b'-' | b'0'..=b'9') => json_number(t),
            _ => Err(bad(t)),
        }
    }

    fn bad(s: &str) -> String {
        format!("unexpected input at {:?}", &s[..s.len().min(30)])
    }

    fn json_object(s: &str) -> Result<&str, String> {
        let mut t = s.strip_prefix('{').ok_or_else(|| bad(s))?.trim_start();
        if let Some(rest) = t.strip_prefix('}') {
            return Ok(rest);
        }
        loop {
            t = json_str(t)?.trim_start();
            t = t.strip_prefix(':').ok_or_else(|| bad(t))?;
            t = json_value(t)?.trim_start();
            match t.bytes().next() {
                Some(b',') => t = t[1..].trim_start(),
                Some(b'}') => return Ok(&t[1..]),
                _ => return Err(bad(t)),
            }
        }
    }

    fn json_array(s: &str) -> Result<&str, String> {
        let mut t = s.strip_prefix('[').ok_or_else(|| bad(s))?.trim_start();
        if let Some(rest) = t.strip_prefix(']') {
            return Ok(rest);
        }
        loop {
            t = json_value(t)?.trim_start();
            match t.bytes().next() {
                Some(b',') => t = t[1..].trim_start(),
                Some(b']') => return Ok(&t[1..]),
                _ => return Err(bad(t)),
            }
        }
    }

    fn json_str(s: &str) -> Result<&str, String> {
        let t = s.strip_prefix('"').ok_or_else(|| bad(s))?;
        let mut chars = t.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok(&t[i + 1..]),
                '\\' => match chars.next().map(|(_, e)| e) {
                    Some('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') => {}
                    Some('u') => {
                        for _ in 0..4 {
                            let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                            if !h.is_ascii_hexdigit() {
                                return Err(format!("bad hex digit {h:?}"));
                            }
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                c if (c as u32) < 0x20 => return Err(format!("raw control char {c:?}")),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn json_number(s: &str) -> Result<&str, String> {
        let t = s.strip_prefix('-').unwrap_or(s);
        let digits = |s: &str| s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
        let int = digits(t);
        // No leading zeros (RFC 8259 int = "0" / digit1-9 *DIGIT).
        if int == 0 || (int > 1 && t.starts_with('0')) {
            return Err(bad(s));
        }
        let mut t = &t[int..];
        if let Some(frac) = t.strip_prefix('.') {
            let n = digits(frac);
            if n == 0 {
                return Err(bad(s));
            }
            t = &frac[n..];
        }
        if let Some(exp) = t.strip_prefix(['e', 'E']) {
            let exp = exp.strip_prefix(['+', '-']).unwrap_or(exp);
            let n = digits(exp);
            if n == 0 {
                return Err(bad(s));
            }
            t = &exp[n..];
        }
        Ok(t)
    }

    #[test]
    fn json_validator_rejects_malformed_documents() {
        for good in ["{}", "[1,2.5,-3e4]", "{\"a\":[true,null,\"x\\u00e9\"]}"] {
            let rest = json_value(good).unwrap_or_else(|e| panic!("{good}: {e}"));
            assert!(rest.trim().is_empty(), "{good}: trailing {rest:?}");
        }
        for bad in ["", "{", "[1,]", "{\"a\"}", "01", "1.", "\"\\x\"", "{1:2}"] {
            let fully_valid = matches!(json_value(bad), Ok(rest) if rest.trim().is_empty());
            assert!(!fully_valid, "{bad:?} should not validate");
        }
    }

    #[test]
    fn har_is_valid_json() {
        let har = to_har(&report(), "2026-07-06T00:00:00.000Z");
        let rest = json_value(&har).unwrap_or_else(|e| panic!("invalid HAR JSON: {e}"));
        assert!(rest.trim().is_empty(), "trailing garbage: {rest:?}");
    }

    #[test]
    fn har_timings_are_present_and_non_negative() {
        let r = report();
        let har = to_har(&r, "2026-07-06T00:00:00.000Z");
        let timings: Vec<&str> = har
            .match_indices("\"timings\":{")
            .map(|(i, _)| {
                let t = &har[i..];
                &t[..t.find('}').unwrap() + 1]
            })
            .collect();
        assert_eq!(timings.len(), r.trace.fetches.len());
        for t in timings {
            for phase in ["blocked", "send", "wait", "receive"] {
                let needle = format!("\"{phase}\":");
                let v = t.split(&needle).nth(1).unwrap_or_else(|| {
                    panic!("{phase} missing in {t}");
                });
                let num: f64 = v
                    .split([',', '}'])
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap_or_else(|e| panic!("{phase} not a number in {t}: {e}"));
                assert!(num >= 0.0, "{phase} negative in {t}");
            }
            // Unknowable phases stay -1 per the HAR spec.
            for phase in ["dns", "connect", "ssl"] {
                assert!(t.contains(&format!("\"{phase}\":-1")), "{phase} in {t}");
            }
        }
        // Network entries carry a real three-phase split: at least one
        // entry has non-zero send AND receive.
        assert!(
            timings_with_split(&har) > 0,
            "no entry has a full send/wait/receive split: {har}"
        );
    }

    /// Counts timings objects whose send and receive are both > 0.
    fn timings_with_split(har: &str) -> usize {
        har.match_indices("\"timings\":{")
            .filter(|(i, _)| {
                let t = &har[*i..];
                let t = &t[..t.find('}').unwrap() + 1];
                let get = |phase: &str| -> f64 {
                    t.split(&format!("\"{phase}\":"))
                        .nth(1)
                        .and_then(|v| v.split([',', '}']).next())
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(-1.0)
                };
                get("send") > 0.0 && get("receive") > 0.0
            })
            .count()
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
