//! HAR (HTTP Archive) export of load traces.
//!
//! Emits a minimal but valid HAR 1.2 document so waterfalls from the
//! simulator can be opened in standard tooling (Chrome DevTools'
//! "Import HAR", WebPageTest viewers, `har-analyzer`, …). Hand-rolled
//! JSON: the only string content is URLs and fixed enums, so a small
//! escaper suffices.

use cachecatalyst_netsim::{FetchOutcome, SimTime};

use crate::engine::LoadReport;

/// Renders a [`LoadReport`] as a HAR 1.2 JSON document.
///
/// Virtual time zero is mapped onto `epoch` (an RFC3339 timestamp
/// string, e.g. `"2026-07-06T00:00:00.000Z"`), since the simulation
/// has no wall clock of its own.
pub fn to_har(report: &LoadReport, epoch: &str) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"log\":{\"version\":\"1.2\",");
    out.push_str("\"creator\":{\"name\":\"cachecatalyst\",\"version\":\"0.1.0\"},");
    out.push_str(&format!(
        "\"pages\":[{{\"startedDateTime\":{},\"id\":\"page_1\",\"title\":{},\
         \"pageTimings\":{{\"onContentLoad\":{:.3},\"onLoad\":{:.3}}}}}],",
        json_string(epoch),
        json_string(
            report
                .trace
                .fetches
                .first()
                .map(|f| f.url.as_str())
                .unwrap_or("about:blank")
        ),
        report.fcp.as_millis_f64(),
        report.plt.as_millis_f64(),
    ));
    out.push_str("\"entries\":[");
    for (i, f) in report.trace.fetches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let blocked = ms(f.started, f.discovered);
        let duration = ms(f.completed, f.started);
        let (status, status_text) = match f.outcome {
            FetchOutcome::NotModified => (304, "Not Modified"),
            _ => (200, "OK"),
        };
        let served_from_cache = !f.outcome.used_network();
        out.push_str(&format!(
            "{{\"pageref\":\"page_1\",\"startedDateTime\":{},\
             \"time\":{:.3},\
             \"request\":{{\"method\":\"GET\",\"url\":{},\"httpVersion\":\"HTTP/1.1\",\
             \"headers\":[],\"queryString\":[],\"cookies\":[],\
             \"headersSize\":-1,\"bodySize\":0}},\
             \"response\":{{\"status\":{status},\"statusText\":{},\
             \"httpVersion\":\"HTTP/1.1\",\"headers\":[],\"cookies\":[],\
             \"content\":{{\"size\":{},\"mimeType\":\"\"}},\
             \"redirectURL\":\"\",\"headersSize\":-1,\"bodySize\":{}}},\
             \"cache\":{{}},\
             \"timings\":{{\"blocked\":{blocked:.3},\"dns\":-1,\"connect\":-1,\
             \"send\":0,\"wait\":{duration:.3},\"receive\":0,\"ssl\":-1}},\
             \"comment\":{}}}",
            json_string(epoch),
            ms(f.completed, f.discovered),
            json_string(&f.url),
            json_string(status_text),
            f.bytes_down,
            f.bytes_down,
            json_string(&format!(
                "outcome={}; servedFromCache={served_from_cache}; rtts={}; t+{:.3}ms",
                f.outcome.tag().trim(),
                f.rtts,
                f.discovered.as_millis_f64()
            )),
        ));
    }
    out.push_str("]}}");
    out
}

fn ms(later: SimTime, earlier: SimTime) -> f64 {
    later.since(earlier).as_secs_f64() * 1000.0
}

/// Escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upstream::SingleOrigin;
    use cachecatalyst_httpwire::Url;
    use cachecatalyst_netsim::NetworkConditions;
    use cachecatalyst_origin::{HeaderMode, OriginServer};
    use cachecatalyst_webmodel::example_site;
    use std::sync::Arc;

    fn report() -> LoadReport {
        let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
        let up = SingleOrigin(origin);
        crate::Browser::baseline().load(
            &up,
            NetworkConditions::five_g_median(),
            &Url::parse("http://example.org/index.html").unwrap(),
            0,
        )
    }

    #[test]
    fn har_contains_all_entries_and_timings() {
        let r = report();
        let har = to_har(&r, "2026-07-06T00:00:00.000Z");
        assert!(har.starts_with("{\"log\":"));
        for p in ["index.html", "a.css", "b.js", "c.js", "d.jpg"] {
            assert!(har.contains(p), "{p} missing");
        }
        assert_eq!(har.matches("\"pageref\":\"page_1\"").count(), 5);
        assert!(har.contains(&format!("\"onLoad\":{:.3}", r.plt.as_millis_f64())));
        // Cold load over keep-alive HTTP/1.1: every entry paid at
        // least the request/response round trip.
        assert_eq!(har.matches("rtts=0").count(), 0, "{har}");
    }

    #[test]
    fn har_is_structurally_balanced_json() {
        let har = to_har(&report(), "2026-07-06T00:00:00.000Z");
        // Cheap structural validation: balanced braces/brackets and
        // an even number of unescaped quotes.
        let mut depth: i64 = 0;
        let mut brackets: i64 = 0;
        let mut in_str = false;
        let mut prev = ' ';
        for c in har.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    '[' => brackets += 1,
                    ']' => brackets -= 1,
                    _ => {}
                }
            }
            prev = if prev == '\\' && c == '\\' { ' ' } else { c };
        }
        assert_eq!(depth, 0);
        assert_eq!(brackets, 0);
        assert!(!in_str);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
