//! The discrete-event page-load engine.
//!
//! Reproduces the browser behaviour that determines PLT: per-origin
//! connection pools with handshakes and keep-alive, parse-driven
//! dependency discovery (HTML → CSS/JS → images/fonts, JS-executed
//! fetches), and the three serving paths — network, the classic HTTP
//! cache, and the CacheCatalyst service worker. All transfers share
//! the access link's fluid capacity, so parallel fetches slow each
//! other down exactly as under browser throttling.

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use cachecatalyst_catalyst::{ServiceWorker, SwDecision};
use cachecatalyst_httpcache::{HttpCache, Lookup};
use cachecatalyst_httpwire::codec::encode_request;
use cachecatalyst_httpwire::{HeaderName, Request, Response, StatusCode, Url};
use cachecatalyst_netsim::{
    FetchOutcome, FetchTrace, LinkId, LoadTrace, NetEvent, Network, NetworkConditions, SimTime,
};
use cachecatalyst_webmodel::extract::{extract_css_links, extract_html_links};
use cachecatalyst_webmodel::ResourceKind;

use crate::upstream::Upstream;

/// Extension headers used by the proxy comparators (`cachecatalyst-
/// proxies`). They model out-of-band channels real deployments have
/// (HTTP/2 PUSH_PROMISE frames, RDR bundle manifests) inside our
/// HTTP/1.1 wire format.
pub mod ext {
    /// Comma-separated paths the server pushed after this response.
    pub const X_PUSHED: &str = "x-cc-pushed";
    /// Comma-separated paths whose bodies are embedded in this
    /// response (an RDR bundle).
    pub const X_RDR_BUNDLE: &str = "x-cc-rdr-bundle";
    /// Extra server-side delay in milliseconds (proxy resolution
    /// time) charged before the response starts downloading.
    pub const X_SERVER_DELAY_MS: &str = "x-cc-server-delay-ms";
    /// Client's previous visit time in virtual seconds (a stand-in
    /// for cache digests, used by push-if-changed).
    pub const X_LAST_VISIT: &str = "x-cc-last-visit";
    /// Marks engine-internal body fetches (push/bundle materation);
    /// origins should not treat these as real client requests.
    pub const X_INTERNAL: &str = "x-cc-internal";
}

/// Tunables of the page-load engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Parallel connections per origin (browsers use 6 for HTTP/1.1).
    pub max_connections_per_origin: usize,
    /// HTTP/2-style transport: one multiplexed connection per origin,
    /// no per-request connection queueing.
    pub http2: bool,
    /// Charge one DNS lookup (costing `dns_cost × RTT`) for the first
    /// connection to each host. Off by default to match the paper's
    /// loopback-hosted methodology.
    pub model_dns: bool,
    /// Charge a TLS 1.3 handshake (one extra RTT) when establishing a
    /// connection. Off by default (the paper's prototype serves plain
    /// HTTP).
    pub tls: bool,
    /// Probability that a request/response exchange loses a packet and
    /// pays one retransmission timeout (modeled as +2×RTT). Applied
    /// per network fetch with a deterministic seeded stream.
    pub loss_rate: f64,
    /// Seed for the loss stream (same seed ⇒ same losses).
    pub loss_seed: u64,
    /// Honor RFC 5861 `stale-while-revalidate`: serve an eligible
    /// stale entry immediately and revalidate in the background
    /// (browsers implement this; on by default).
    pub enable_swr: bool,
    /// Prioritize render-blocking fetches (HTML/CSS/JS) over images
    /// and other content when queueing for connections, as browsers
    /// do. On by default.
    pub prioritize_render_blocking: bool,
    /// Server processing time charged per request.
    pub server_think: Duration,
    /// Local serving overhead of a service-worker cache hit.
    pub sw_overhead: Duration,
    /// Local serving overhead of an HTTP-cache hit.
    pub cache_overhead: Duration,
    /// Fixed + size-proportional cost of parsing HTML/CSS.
    pub parse_base: Duration,
    pub parse_bytes_per_sec: f64,
    /// Fixed + size-proportional cost of executing JS.
    pub exec_base: Duration,
    pub exec_bytes_per_sec: f64,
    /// Serve via the CacheCatalyst service worker (catalyst mode).
    pub use_service_worker: bool,
    /// Serve via the classic HTTP cache (baseline mode).
    pub use_http_cache: bool,
    /// `cc-session` cookie attached to every request (enables the
    /// origin's session capture).
    pub session: Option<String>,
    /// Virtual time of the client's previous visit, announced via the
    /// `x-cc-last-visit` request header (used by push-if-changed).
    pub last_visit: Option<i64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_connections_per_origin: 6,
            http2: false,
            model_dns: false,
            tls: false,
            loss_rate: 0.0,
            loss_seed: 0,
            enable_swr: true,
            prioritize_render_blocking: true,
            server_think: Duration::from_millis(1),
            sw_overhead: Duration::from_micros(300),
            cache_overhead: Duration::from_micros(150),
            parse_base: Duration::from_millis(1),
            parse_bytes_per_sec: 50e6,
            exec_base: Duration::from_millis(2),
            exec_bytes_per_sec: 10e6,
            use_service_worker: false,
            use_http_cache: true,
            session: None,
            last_visit: None,
        }
    }
}

/// The result of one page load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub trace: LoadTrace,
    /// Page load time (the `onLoad` moment).
    pub plt: SimTime,
    /// First-contentful-paint approximation: the base document and
    /// every render-blocking resource it references (stylesheets and
    /// synchronous scripts in the markup) are available. The paper
    /// defers FCP/SI/TTI to future work; this is the FCP part.
    pub fcp: SimTime,
    pub full_transfers: usize,
    pub not_modified: usize,
    pub cache_hits: usize,
    pub sw_hits: usize,
    pub bytes_down: u64,
    pub bytes_up: u64,
    /// Resources delivered ahead of request (push / bundle).
    pub pushed: usize,
    /// Pushed resources the page never asked for (wasted).
    pub pushed_unused: usize,
    /// Bytes spent on pushes.
    pub pushed_bytes: u64,
    /// Bytes spent on pushes the page never used.
    pub pushed_unused_bytes: u64,
    /// Stale responses served under `stale-while-revalidate` (each one
    /// also spawned a background revalidation).
    pub swr_served: usize,
}

impl LoadReport {
    pub fn plt_ms(&self) -> f64 {
        self.plt.as_millis_f64()
    }

    pub fn fcp_ms(&self) -> f64 {
        self.fcp.as_millis_f64()
    }

    /// Round trips that touched the network.
    pub fn network_requests(&self) -> usize {
        self.full_transfers + self.not_modified
    }
}

type FetchId = usize;

#[derive(Debug)]
enum Pending {
    DnsDone(String),
    HandshakeDone(FetchId),
    UploadDone(FetchId),
    ServerTurn(FetchId),
    ServerDelayed(FetchId),
    DownloadDone(FetchId),
    LastByte(FetchId),
    Instant(FetchId),
    Parse(FetchId),
    Exec(FetchId),
    PushDone(FetchId),
}

struct FetchState {
    url: Url,
    req: Request,
    discovered: SimTime,
    started: Option<SimTime>,
    completed: Option<SimTime>,
    conn: Option<usize>,
    response: Option<Response>,
    delivered: Option<Response>,
    outcome: FetchOutcome,
    bytes_up: u64,
    bytes_down: u64,
    is_navigation: bool,
    is_push: bool,
    push_used: bool,
    /// Background revalidation: result updates the cache but does not
    /// gate onLoad and produces no page-visible content processing.
    is_background: bool,
    /// Round trips charged so far: DNS, handshake legs, the
    /// request/response exchange, retransmission timeouts.
    rtts: u32,
}

struct ConnState {
    established: bool,
    busy: bool,
}

#[derive(Default)]
struct Pool {
    conns: Vec<ConnState>,
    /// High-priority waiters (render-blocking: HTML/CSS/JS).
    queue: VecDeque<FetchId>,
    /// Low-priority waiters (images, fonts, data).
    queue_low: VecDeque<FetchId>,
    /// DNS resolution state for the host (None = not started,
    /// Some(false) = in flight, Some(true) = resolved).
    dns: Option<bool>,
    /// Fetches parked on the DNS lookup.
    dns_pending: Vec<FetchId>,
}

impl Pool {
    fn pop_waiter(&mut self) -> Option<FetchId> {
        self.queue
            .pop_front()
            .or_else(|| self.queue_low.pop_front())
    }
}

/// One page load in progress. Borrows the browser's persistent state
/// (HTTP cache, service worker) for the duration of the load.
pub struct Engine<'a> {
    /// xorshift state for the seeded loss stream.
    loss_state: u64,
    up: &'a dyn Upstream,
    cond: NetworkConditions,
    cfg: &'a EngineConfig,
    cache: &'a mut HttpCache,
    sw: &'a mut ServiceWorker,
    t_secs: i64,
    net: Network,
    uplink: LinkId,
    downlink: LinkId,
    fetches: Vec<FetchState>,
    pending: HashMap<u64, Pending>,
    next_token: u64,
    pools: HashMap<String, Pool>,
    requested: HashSet<String>,
    /// Responses already on the client (push / bundle), keyed by URL.
    predelivered: HashMap<String, Response>,
    /// Trace row of the push that delivered each URL.
    push_rows: HashMap<String, FetchId>,
    /// Pushes still in flight (PUSH_PROMISE semantics): a request for
    /// a promised URL waits for the pushed stream instead of
    /// refetching. url → (push row, waiting requester).
    push_inflight: HashMap<String, (FetchId, Option<FetchId>)>,
    /// Fetches that gate first paint: the navigation plus the CSS/JS
    /// referenced directly by the base document's markup.
    render_blocking: Vec<FetchId>,
    /// The navigation URL, used as the Referer of subresource fetches.
    navigation_url: Option<String>,
}

impl<'a> Engine<'a> {
    pub fn new(
        up: &'a dyn Upstream,
        cond: NetworkConditions,
        cfg: &'a EngineConfig,
        cache: &'a mut HttpCache,
        sw: &'a mut ServiceWorker,
        t_secs: i64,
    ) -> Engine<'a> {
        let mut net = Network::new();
        let downlink = net.add_link(cond.down_bps);
        let uplink = net.add_link(cond.up_bps);
        Engine {
            loss_state: cfg.loss_seed | 1,
            up,
            cond,
            cfg,
            cache,
            sw,
            t_secs,
            net,
            uplink,
            downlink,
            fetches: Vec::new(),
            pending: HashMap::new(),
            next_token: 0,
            pools: HashMap::new(),
            requested: HashSet::new(),
            predelivered: HashMap::new(),
            push_rows: HashMap::new(),
            push_inflight: HashMap::new(),
            render_blocking: Vec::new(),
            navigation_url: None,
        }
    }

    /// Loads `base_url` to completion and reports.
    pub fn load(mut self, base_url: &Url) -> LoadReport {
        self.request_fetch(base_url.clone(), SimTime::ZERO, true);
        while let Some((now, ev)) = self.net.next() {
            let token = match ev {
                NetEvent::Timer(t) => t,
                NetEvent::FlowDone(_, t) => t,
            };
            let pending = self.pending.remove(&token).expect("unknown token fired");
            self.dispatch(pending, now);
        }
        self.finalize()
    }

    fn token(&mut self, p: Pending) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.pending.insert(t, p);
        t
    }

    fn dispatch(&mut self, pending: Pending, now: SimTime) {
        match pending {
            Pending::DnsDone(host) => {
                let pool = self.pools.get_mut(&host).expect("pool exists");
                pool.dns = Some(true);
                let parked = std::mem::take(&mut pool.dns_pending);
                for f in parked {
                    self.assign_conn(f, now);
                }
            }
            Pending::HandshakeDone(f) => {
                let host = self.fetches[f].url.host().to_owned();
                let conn = self.fetches[f].conn.expect("handshaking on a conn");
                let pool = self.pools.get_mut(&host).expect("pool exists");
                pool.conns[conn].established = true;
                if self.cfg.http2 {
                    // Multiplexed: everything parked on the handshake
                    // proceeds at once.
                    let parked: Vec<FetchId> =
                        std::iter::once(f).chain(pool.queue.drain(..)).collect();
                    for w in parked {
                        self.fetches[w].conn = Some(conn);
                        self.start_upload(w, now);
                    }
                } else {
                    self.start_upload(f, now);
                }
            }
            Pending::UploadDone(f) => {
                let loss = self.loss_penalty();
                self.fetches[f].rtts += 1 + if loss > Duration::ZERO { 2 } else { 0 };
                let tok = self.token(Pending::ServerTurn(f));
                let dt = self.cond.one_way() + self.cfg.server_think + loss;
                self.net.set_timer(dt, tok);
            }
            Pending::ServerTurn(f) => {
                let resp = self.up.handle(
                    self.fetches[f].url.host(),
                    &self.fetches[f].req,
                    self.t_secs,
                );
                let extra_delay = resp
                    .headers
                    .get(ext::X_SERVER_DELAY_MS)
                    .and_then(|v| v.parse::<u64>().ok());
                let bytes = resp.wire_len() as u64;
                self.fetches[f].bytes_down = bytes;
                self.fetches[f].response = Some(resp);
                match extra_delay {
                    Some(ms) if ms > 0 => {
                        let tok = self.token(Pending::ServerDelayed(f));
                        self.net.set_timer(Duration::from_millis(ms), tok);
                    }
                    _ => self.start_download(f),
                }
            }
            Pending::ServerDelayed(f) => self.start_download(f),
            Pending::DownloadDone(f) => {
                let tok = self.token(Pending::LastByte(f));
                self.net.set_timer(self.cond.one_way(), tok);
            }
            Pending::LastByte(f) => {
                self.release_conn(f, now);
                let resp = self.fetches[f].response.take().expect("response set");
                self.deliver_network(f, resp, now);
            }
            Pending::Instant(f) => {
                let resp = self.fetches[f].response.take().expect("local response");
                self.complete(f, resp, now);
            }
            Pending::Parse(f) => self.on_parse(f, now),
            Pending::Exec(f) => self.on_exec(f, now),
            Pending::PushDone(f) => {
                self.fetches[f].completed = Some(now);
                let resp = self.fetches[f].response.take().expect("pushed body");
                let url = self.fetches[f].url.to_string();
                self.push_rows.insert(url.clone(), f);
                let waiter = self
                    .push_inflight
                    .remove(&url)
                    .and_then(|(_, waiter)| waiter);
                match waiter {
                    Some(w) => {
                        // The page asked while the push was in flight:
                        // the stream's completion answers the request.
                        self.fetches[f].push_used = true;
                        self.fetches[w].outcome = FetchOutcome::Pushed;
                        self.fetches[w].started.get_or_insert(now);
                        self.complete(w, resp, now);
                    }
                    None => {
                        self.predelivered.insert(url, resp);
                    }
                }
            }
        }
    }

    fn start_download(&mut self, f: FetchId) {
        let bytes = self.fetches[f].bytes_down;
        let tok = self.token(Pending::DownloadDone(f));
        self.net.start_flow_or_timer(self.downlink, tok, bytes, tok);
    }

    // ---- fetch initiation ----

    fn request_fetch(&mut self, url: Url, now: SimTime, is_navigation: bool) {
        let key = url.to_string();
        if !self.requested.insert(key) {
            return;
        }
        let path = url.path().to_owned();
        let mut req = Request::get(&url.target().to_string())
            .with_header(HeaderName::HOST, &url.authority())
            .with_header(HeaderName::USER_AGENT, "cachecatalyst-browser/0.1");
        if let Some(session) = &self.cfg.session {
            req.headers
                .insert("cookie", &format!("cc-session={session}"));
        }
        if let Some(last) = self.cfg.last_visit {
            req.headers.insert(ext::X_LAST_VISIT, &last.to_string());
        }
        if is_navigation {
            self.navigation_url = Some(url.to_string());
        } else if let Some(nav) = &self.navigation_url {
            req.headers.insert("referer", nav);
        }

        let f = self.fetches.len();
        self.fetches.push(FetchState {
            url: url.clone(),
            req,
            discovered: now,
            started: None,
            completed: None,
            conn: None,
            response: None,
            delivered: None,
            outcome: FetchOutcome::FullTransfer,
            bytes_up: 0,
            bytes_down: 0,
            is_navigation,
            is_push: false,
            push_used: false,
            is_background: false,
            rtts: 0,
        });
        if is_navigation {
            self.render_blocking.push(f);
        }

        // --- the serving decision ---
        if self.cfg.use_service_worker {
            if is_navigation {
                // Navigations always go upstream; attach the SW's
                // stored validator so an unchanged page costs a 304.
                if let Some(tag) = self.sw.cached_etag(&url.to_string()) {
                    let tag = tag.to_string();
                    self.fetches[f]
                        .req
                        .headers
                        .insert(HeaderName::IF_NONE_MATCH, &tag);
                }
            } else {
                match self.sw.intercept(&url.to_string(), &path) {
                    SwDecision::ServeLocal(resp) => {
                        self.fetches[f].outcome = FetchOutcome::ServiceWorkerHit;
                        self.fetches[f].response = Some(resp);
                        let tok = self.token(Pending::Instant(f));
                        self.net.set_timer(self.cfg.sw_overhead, tok);
                        return;
                    }
                    SwDecision::Forward { if_none_match } => {
                        if let Some(tag) = if_none_match {
                            self.fetches[f]
                                .req
                                .headers
                                .insert(HeaderName::IF_NONE_MATCH, &tag.to_string());
                        }
                    }
                }
            }
        } else if self.cfg.use_http_cache {
            let lookup = {
                let req = &self.fetches[f].req;
                self.cache.lookup_for(&url.to_string(), req, self.t_secs)
            };
            match lookup {
                Lookup::Fresh(resp) => {
                    self.fetches[f].outcome = FetchOutcome::CacheHit;
                    self.fetches[f].response = Some(resp);
                    let tok = self.token(Pending::Instant(f));
                    self.net.set_timer(self.cfg.cache_overhead, tok);
                    return;
                }
                Lookup::Stale {
                    response,
                    etag,
                    last_modified,
                    swr_usable,
                } => {
                    if swr_usable && self.cfg.enable_swr {
                        // RFC 5861: serve the stale copy now, refresh
                        // in the background.
                        self.fetches[f].outcome = FetchOutcome::CacheHit;
                        self.fetches[f].response = Some(response);
                        let tok = self.token(Pending::Instant(f));
                        self.net.set_timer(self.cfg.cache_overhead, tok);
                        self.spawn_background_revalidation(url.clone(), etag, last_modified, now);
                        return;
                    }
                    if let Some(tag) = etag {
                        self.fetches[f]
                            .req
                            .headers
                            .insert(HeaderName::IF_NONE_MATCH, &tag);
                    } else if let Some(lm) = last_modified {
                        self.fetches[f]
                            .req
                            .headers
                            .insert(HeaderName::IF_MODIFIED_SINCE, &lm);
                    }
                }
                Lookup::Miss => {}
            }
        }
        // Pushed / bundled bodies that arrived ahead of the request are
        // used before going to the network (but never shadow a fresh
        // cache or SW hit, matching browsers' push-cache precedence).
        if self.try_predelivered(f) {
            return;
        }
        self.assign_to_pool(f, now);
    }

    /// Issues a conditional request that refreshes the cache without
    /// gating onLoad (the revalidation half of stale-while-revalidate).
    fn spawn_background_revalidation(
        &mut self,
        url: Url,
        etag: Option<String>,
        last_modified: Option<String>,
        now: SimTime,
    ) {
        let mut req = Request::get(&url.target().to_string())
            .with_header(HeaderName::HOST, &url.authority())
            .with_header(HeaderName::USER_AGENT, "cachecatalyst-browser/0.1");
        if let Some(tag) = etag {
            req.headers.insert(HeaderName::IF_NONE_MATCH, &tag);
        } else if let Some(lm) = last_modified {
            req.headers.insert(HeaderName::IF_MODIFIED_SINCE, &lm);
        }
        let f = self.fetches.len();
        self.fetches.push(FetchState {
            url,
            req,
            discovered: now,
            started: None,
            completed: None,
            conn: None,
            response: None,
            delivered: None,
            outcome: FetchOutcome::NotModified,
            bytes_up: 0,
            bytes_down: 0,
            is_navigation: false,
            is_push: false,
            push_used: false,
            is_background: true,
            rtts: 0,
        });
        self.assign_to_pool(f, now);
    }

    /// Serves `f` from the predelivered set (or parks it on an
    /// in-flight push promise) if possible.
    fn try_predelivered(&mut self, f: FetchId) -> bool {
        let key = self.fetches[f].url.to_string();
        if let Some(resp) = self.predelivered.remove(&key) {
            if let Some(&pf) = self.push_rows.get(&key) {
                self.fetches[pf].push_used = true;
            }
            self.fetches[f].outcome = FetchOutcome::Pushed;
            self.fetches[f].response = Some(resp);
            let tok = self.token(Pending::Instant(f));
            self.net.set_timer(self.cfg.cache_overhead, tok);
            return true;
        }
        if let Some(entry) = self.push_inflight.get_mut(&key) {
            debug_assert!(entry.1.is_none(), "one requester per URL");
            entry.1 = Some(f);
            return true;
        }
        false
    }

    // ---- connection pool ----

    fn assign_to_pool(&mut self, f: FetchId, now: SimTime) {
        if self.cfg.model_dns {
            let host = self.fetches[f].url.host().to_owned();
            let pool = self.pools.entry(host.clone()).or_default();
            match pool.dns {
                Some(true) => {}
                Some(false) => {
                    pool.dns_pending.push(f);
                    return;
                }
                None => {
                    pool.dns = Some(false);
                    pool.dns_pending.push(f);
                    // The fetch that triggers the lookup pays its RTT;
                    // later fetches just park on the resolution.
                    self.fetches[f].rtts += 1;
                    let tok = self.token(Pending::DnsDone(host));
                    self.net.set_timer(self.cond.rtt, tok);
                    return;
                }
            }
        }
        self.assign_conn(f, now);
    }

    fn assign_conn(&mut self, f: FetchId, now: SimTime) {
        let host = self.fetches[f].url.host().to_owned();
        let max = self.cfg.max_connections_per_origin;
        if self.cfg.http2 {
            let pool = self.pools.entry(host).or_default();
            match pool.conns.first() {
                None => {
                    pool.conns.push(ConnState {
                        established: false,
                        busy: true,
                    });
                    self.fetches[f].conn = Some(0);
                    let tok = self.token(Pending::HandshakeDone(f));
                    let dt = self.handshake_time(f);
                    self.net.set_timer(dt, tok);
                }
                Some(c) if !c.established => pool.queue.push_back(f),
                Some(_) => {
                    self.fetches[f].conn = Some(0);
                    self.start_upload(f, now);
                }
            }
            return;
        }
        let pool = self.pools.entry(host).or_default();
        // Prefer an idle, established connection.
        if let Some(idx) = pool.conns.iter().position(|c| !c.busy && c.established) {
            pool.conns[idx].busy = true;
            self.fetches[f].conn = Some(idx);
            self.start_upload(f, now);
            return;
        }
        if pool.conns.len() < max {
            pool.conns.push(ConnState {
                established: false,
                busy: true,
            });
            let idx = pool.conns.len() - 1;
            self.fetches[f].conn = Some(idx);
            let tok = self.token(Pending::HandshakeDone(f));
            let dt = self.handshake_time(f);
            self.net.set_timer(dt, tok);
            return;
        }
        let high = !self.cfg.prioritize_render_blocking
            || matches!(
                ResourceKind::from_path(self.fetches[f].url.path()),
                ResourceKind::Html | ResourceKind::Css | ResourceKind::Js
            );
        let host = self.fetches[f].url.host().to_owned();
        let pool = self.pools.get_mut(&host).expect("pool");
        if high {
            pool.queue.push_back(f);
        } else {
            pool.queue_low.push_back(f);
        }
    }

    /// TCP (+ optional TLS 1.3) connection establishment time, charged
    /// to the fetch opening the connection.
    fn handshake_time(&mut self, f: FetchId) -> Duration {
        let mut dt = self.cond.rtt;
        let mut rtts = 1u32;
        if self.cfg.tls {
            dt += self.cond.rtt;
            rtts += 1;
        }
        let loss = self.loss_penalty();
        if loss > Duration::ZERO {
            rtts += 2;
        }
        self.fetches[f].rtts += rtts;
        dt + loss
    }

    /// Draws from the seeded loss stream: with probability
    /// `loss_rate`, one retransmission timeout (+2×RTT).
    fn loss_penalty(&mut self) -> Duration {
        if self.cfg.loss_rate <= 0.0 {
            return Duration::ZERO;
        }
        // xorshift64*: deterministic, decoupled from workload seeds.
        let mut x = self.loss_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.loss_state = x;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.cfg.loss_rate {
            self.cond.rtt * 2
        } else {
            Duration::ZERO
        }
    }

    fn release_conn(&mut self, f: FetchId, now: SimTime) {
        if self.cfg.http2 {
            return; // streams do not occupy the connection
        }
        let host = self.fetches[f].url.host().to_owned();
        let Some(idx) = self.fetches[f].conn.take() else {
            return;
        };
        let pool = self.pools.get_mut(&host).expect("pool exists");
        pool.conns[idx].busy = false;
        if let Some(next) = pool.pop_waiter() {
            pool.conns[idx].busy = true;
            self.fetches[next].conn = Some(idx);
            self.start_upload(next, now);
        }
    }

    fn start_upload(&mut self, f: FetchId, now: SimTime) {
        if self.fetches[f].started.is_none() {
            self.fetches[f].started = Some(now);
        }
        let bytes = encode_request(&self.fetches[f].req).len() as u64;
        self.fetches[f].bytes_up = bytes;
        let tok = self.token(Pending::UploadDone(f));
        self.net.start_flow_or_timer(self.uplink, tok, bytes, tok);
    }

    // ---- delivery ----

    fn deliver_network(&mut self, f: FetchId, resp: Response, now: SimTime) {
        let url = self.fetches[f].url.to_string();
        if self.fetches[f].is_background {
            self.fetches[f].completed = Some(now);
            self.fetches[f].outcome = if resp.status == StatusCode::NOT_MODIFIED {
                FetchOutcome::NotModified
            } else {
                FetchOutcome::FullTransfer
            };
            if resp.status == StatusCode::NOT_MODIFIED {
                let _ = self
                    .cache
                    .update_with_304(&url, &resp, self.t_secs, self.t_secs);
            } else {
                self.cache
                    .store(&url, &self.fetches[f].req, &resp, self.t_secs, self.t_secs);
            }
            return;
        }
        let is_nav = self.fetches[f].is_navigation;
        let delivered;
        if self.cfg.use_service_worker {
            if is_nav {
                // The navigation response (200 or 304) carries the
                // fresh X-Etag-Config; install it, then resolve the
                // body through the SW cache.
                self.sw.on_navigation(&resp);
            }
            self.fetches[f].outcome = if resp.status == StatusCode::NOT_MODIFIED {
                FetchOutcome::NotModified
            } else {
                FetchOutcome::FullTransfer
            };
            delivered = self.sw.on_response(&url, &resp);
        } else if self.cfg.use_http_cache {
            if resp.status == StatusCode::NOT_MODIFIED {
                self.fetches[f].outcome = FetchOutcome::NotModified;
                delivered = self
                    .cache
                    .update_with_304(&url, &resp, self.t_secs, self.t_secs)
                    .unwrap_or(resp);
            } else {
                self.fetches[f].outcome = FetchOutcome::FullTransfer;
                self.cache
                    .store(&url, &self.fetches[f].req, &resp, self.t_secs, self.t_secs);
                delivered = resp;
            }
        } else {
            self.fetches[f].outcome = FetchOutcome::FullTransfer;
            delivered = resp;
        }
        self.complete(f, delivered, now);
    }

    /// A response is now available to the page: record it and schedule
    /// content processing (parse / execute).
    fn complete(&mut self, f: FetchId, delivered: Response, now: SimTime) {
        self.fetches[f].completed = Some(now);
        // Pushed/bundled responses enter the regular caches, exactly
        // as browsers admit pushed streams into the HTTP cache.
        if self.fetches[f].outcome == FetchOutcome::Pushed {
            let url = self.fetches[f].url.to_string();
            if self.cfg.use_service_worker {
                let _ = self.sw.on_response(&url, &delivered);
            } else if self.cfg.use_http_cache {
                self.cache.store(
                    &url,
                    &self.fetches[f].req,
                    &delivered,
                    self.t_secs,
                    self.t_secs,
                );
            }
        }
        if !delivered.status.is_success() {
            self.fetches[f].delivered = Some(delivered);
            return;
        }
        let kind = ResourceKind::from_path(self.fetches[f].url.path());
        let len = delivered.body.len() as f64;
        match kind {
            ResourceKind::Html | ResourceKind::Css => {
                let dt = self.cfg.parse_base
                    + Duration::from_secs_f64(len / self.cfg.parse_bytes_per_sec);
                let tok = self.token(Pending::Parse(f));
                self.net.set_timer(dt, tok);
            }
            ResourceKind::Js => {
                let dt =
                    self.cfg.exec_base + Duration::from_secs_f64(len / self.cfg.exec_bytes_per_sec);
                let tok = self.token(Pending::Exec(f));
                self.net.set_timer(dt, tok);
            }
            _ => {}
        }
        let is_nav = self.fetches[f].is_navigation;
        self.fetches[f].delivered = Some(delivered);
        if is_nav {
            self.handle_predelivery(f, now);
        }
    }

    /// Materializes server-push and RDR-bundle announcements carried
    /// on the navigation response.
    fn handle_predelivery(&mut self, f: FetchId, now: SimTime) {
        let delivered = self.fetches[f].delivered.clone().expect("just set");
        let base = self.fetches[f].url.clone();
        // RDR bundle: bodies already arrived inside the bundle body;
        // make them instantly available.
        if let Some(list) = delivered.headers.get_combined(ext::X_RDR_BUNDLE) {
            for path in list.split(',').filter(|p| !p.trim().is_empty()) {
                let Ok(url) = base.join(path.trim()) else {
                    continue;
                };
                let req = Request::get(&url.target().to_string())
                    .with_header(HeaderName::HOST, &url.authority())
                    .with_header(ext::X_INTERNAL, "bundle");
                let resp = self.up.handle(url.host(), &req, self.t_secs);
                if resp.status.is_success() {
                    self.predelivered.insert(url.to_string(), resp);
                }
            }
        }
        // Server push: bodies stream down after the navigation
        // response, sharing the downlink with everything else.
        if let Some(list) = delivered.headers.get_combined(ext::X_PUSHED) {
            for path in list.split(',').filter(|p| !p.trim().is_empty()) {
                let Ok(url) = base.join(path.trim()) else {
                    continue;
                };
                let key = url.to_string();
                if self.requested.contains(&key) || self.predelivered.contains_key(&key) {
                    continue;
                }
                let req = Request::get(&url.target().to_string())
                    .with_header(HeaderName::HOST, &url.authority())
                    .with_header(ext::X_INTERNAL, "push");
                let resp = self.up.handle(url.host(), &req, self.t_secs);
                if !resp.status.is_success() {
                    continue;
                }
                let bytes = resp.wire_len() as u64;
                let pf = self.fetches.len();
                self.fetches.push(FetchState {
                    url,
                    req,
                    discovered: now,
                    started: Some(now),
                    completed: None,
                    conn: None,
                    response: Some(resp),
                    delivered: None,
                    outcome: FetchOutcome::Pushed,
                    bytes_up: 0,
                    bytes_down: bytes,
                    is_navigation: false,
                    is_push: true,
                    push_used: false,
                    is_background: false,
                    rtts: 0,
                });
                self.push_inflight.insert(key, (pf, None));
                let tok = self.token(Pending::PushDone(pf));
                self.net.start_flow_or_timer(self.downlink, tok, bytes, tok);
            }
        }
    }

    fn on_parse(&mut self, f: FetchId, now: SimTime) {
        let Some(delivered) = self.fetches[f].delivered.clone() else {
            return;
        };
        let Ok(text) = std::str::from_utf8(&delivered.body) else {
            return;
        };
        let kind = ResourceKind::from_path(self.fetches[f].url.path());
        let links: Vec<String> = match kind {
            ResourceKind::Html => extract_html_links(text)
                .into_iter()
                .map(|l| l.href)
                .collect(),
            _ => extract_css_links(text)
                .into_iter()
                .map(|l| l.href)
                .collect(),
        };
        let base = self.fetches[f].url.clone();
        let from_navigation = self.fetches[f].is_navigation;
        for href in links {
            if href == cachecatalyst_catalyst::SW_SCRIPT_PATH {
                continue; // SW registration is out-of-band, not a subresource
            }
            if let Ok(url) = base.join(&href) {
                let next_id = self.fetches.len();
                let before = self.requested.len();
                self.request_fetch(url.clone(), now, false);
                let created = self.requested.len() > before;
                // Stylesheets and scripts referenced by the base
                // document's markup block first paint.
                if created
                    && from_navigation
                    && matches!(
                        ResourceKind::from_path(url.path()),
                        ResourceKind::Css | ResourceKind::Js
                    )
                {
                    self.render_blocking.push(next_id);
                }
            }
        }
    }

    fn on_exec(&mut self, f: FetchId, now: SimTime) {
        let Some(delivered) = self.fetches[f].delivered.clone() else {
            return;
        };
        let Ok(text) = std::str::from_utf8(&delivered.body) else {
            return;
        };
        let base = self.fetches[f].url.clone();
        for href in cachecatalyst_webmodel::jsdialect::evaluate(text) {
            if let Ok(url) = base.join(&href) {
                self.request_fetch(url, now, false);
            }
        }
    }

    fn finalize(self) -> LoadReport {
        let mut trace = LoadTrace::default();
        let mut full = 0;
        let mut nm = 0;
        let mut cache_hits = 0;
        let mut sw_hits = 0;
        let mut pushed = 0;
        let mut pushed_unused = 0;
        let mut pushed_bytes = 0u64;
        let mut pushed_unused_bytes = 0u64;
        let mut background = 0;
        let mut plt = SimTime::ZERO;
        for f in &self.fetches {
            let completed = f.completed.unwrap_or(f.discovered);
            if f.is_background {
                background += 1;
            } else if f.is_push {
                pushed += 1;
                pushed_bytes += f.bytes_down;
                if !f.push_used {
                    pushed_unused += 1;
                    pushed_unused_bytes += f.bytes_down;
                }
            } else {
                // onLoad waits for requested resources, not for
                // speculative pushes the page never asked for.
                plt = plt.max(completed);
                match f.outcome {
                    FetchOutcome::FullTransfer => full += 1,
                    FetchOutcome::NotModified => nm += 1,
                    FetchOutcome::CacheHit => cache_hits += 1,
                    FetchOutcome::ServiceWorkerHit => sw_hits += 1,
                    FetchOutcome::Pushed => {}
                }
            }
            trace.fetches.push(FetchTrace {
                url: f.url.to_string(),
                discovered: f.discovered,
                started: f.started.unwrap_or(f.discovered),
                completed,
                outcome: f.outcome,
                bytes_down: f.bytes_down,
                bytes_up: f.bytes_up,
                rtts: f.rtts,
            });
        }
        let bytes_down = trace.bytes_down();
        let bytes_up = trace.bytes_up();
        let fcp = self
            .render_blocking
            .iter()
            .filter_map(|&f| self.fetches[f].completed)
            .max()
            .unwrap_or(plt);
        LoadReport {
            trace,
            plt,
            fcp,
            full_transfers: full,
            not_modified: nm,
            cache_hits,
            sw_hits,
            bytes_down,
            bytes_up,
            pushed,
            pushed_unused,
            pushed_bytes,
            pushed_unused_bytes,
            // One background revalidation per SWR-served response.
            swr_served: background,
        }
    }
}
