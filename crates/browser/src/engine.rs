//! The discrete-event page-load engine.
//!
//! Reproduces the browser behaviour that determines PLT: per-origin
//! connection pools with handshakes and keep-alive, parse-driven
//! dependency discovery (HTML → CSS/JS → images/fonts, JS-executed
//! fetches), and the three serving paths — network, the classic HTTP
//! cache, and the CacheCatalyst service worker. All transfers share
//! the access link's fluid capacity, so parallel fetches slow each
//! other down exactly as under browser throttling.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use cachecatalyst_catalyst::{
    tamper_config_headers, ConfigIntegrity, EtagConfig, ServiceWorker, SwDecision,
};
use cachecatalyst_httpcache::{HttpCache, Lookup};
use cachecatalyst_httpwire::codec::encode_request;
use cachecatalyst_httpwire::{tracectx, HeaderName, Request, Response, StatusCode, Url};
use cachecatalyst_netsim::{
    Fault, FaultPlan, FaultSchedule, FetchOutcome, FetchTrace, LinkId, LoadTrace, NetEvent,
    Network, NetworkConditions, SimTime,
};
use cachecatalyst_telemetry::span::{Span, SpanId, SpanSink, TraceContext, TraceId};
use cachecatalyst_telemetry::{CacheAudit, CacheDecision};
use cachecatalyst_webmodel::extract::{extract_css_links, extract_html_links};
use cachecatalyst_webmodel::ResourceKind;

use crate::upstream::Upstream;

/// Extension headers used by the proxy comparators (`cachecatalyst-
/// proxies`). They model out-of-band channels real deployments have
/// (HTTP/2 PUSH_PROMISE frames, RDR bundle manifests) inside our
/// HTTP/1.1 wire format.
pub mod ext {
    /// Comma-separated paths the server pushed after this response.
    pub const X_PUSHED: &str = "x-cc-pushed";
    /// Comma-separated paths whose bodies are embedded in this
    /// response (an RDR bundle).
    pub const X_RDR_BUNDLE: &str = "x-cc-rdr-bundle";
    /// Extra server-side delay in milliseconds (proxy resolution
    /// time) charged before the response starts downloading.
    pub const X_SERVER_DELAY_MS: &str = "x-cc-server-delay-ms";
    /// Client's previous visit time in virtual seconds (a stand-in
    /// for cache digests, used by push-if-changed).
    pub const X_LAST_VISIT: &str = "x-cc-last-visit";
    /// Marks engine-internal body fetches (push/bundle materation);
    /// origins should not treat these as real client requests.
    pub const X_INTERNAL: &str = "x-cc-internal";
    /// Marks a response as fault-injected (the injected fault's
    /// `kind()`), so harnesses can tell synthesized errors from
    /// genuine upstream ones.
    pub const X_FAULT: &str = "x-cc-fault";
}

/// Tunables of the page-load engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Parallel connections per origin (browsers use 6 for HTTP/1.1).
    pub max_connections_per_origin: usize,
    /// HTTP/2-style transport: one multiplexed connection per origin,
    /// no per-request connection queueing.
    pub http2: bool,
    /// Charge one DNS lookup (costing `dns_cost × RTT`) for the first
    /// connection to each host. Off by default to match the paper's
    /// loopback-hosted methodology.
    pub model_dns: bool,
    /// Charge a TLS 1.3 handshake (one extra RTT) when establishing a
    /// connection. Off by default (the paper's prototype serves plain
    /// HTTP).
    pub tls: bool,
    /// Probability that a request/response exchange loses a packet and
    /// pays one retransmission timeout (modeled as +2×RTT). Applied
    /// per network fetch with a deterministic seeded stream.
    pub loss_rate: f64,
    /// Seed for the loss stream (same seed ⇒ same losses).
    pub loss_seed: u64,
    /// Honor RFC 5861 `stale-while-revalidate`: serve an eligible
    /// stale entry immediately and revalidate in the background
    /// (browsers implement this; on by default).
    pub enable_swr: bool,
    /// Prioritize render-blocking fetches (HTML/CSS/JS) over images
    /// and other content when queueing for connections, as browsers
    /// do. On by default.
    pub prioritize_render_blocking: bool,
    /// Server processing time charged per request.
    pub server_think: Duration,
    /// Local serving overhead of a service-worker cache hit.
    pub sw_overhead: Duration,
    /// Local serving overhead of an HTTP-cache hit.
    pub cache_overhead: Duration,
    /// Fixed + size-proportional cost of parsing HTML/CSS.
    pub parse_base: Duration,
    pub parse_bytes_per_sec: f64,
    /// Fixed + size-proportional cost of executing JS.
    pub exec_base: Duration,
    pub exec_bytes_per_sec: f64,
    /// Serve via the CacheCatalyst service worker (catalyst mode).
    pub use_service_worker: bool,
    /// Serve via the classic HTTP cache (baseline mode).
    pub use_http_cache: bool,
    /// `cc-session` cookie attached to every request (enables the
    /// origin's session capture).
    pub session: Option<String>,
    /// Virtual time of the client's previous visit, announced via the
    /// `x-cc-last-visit` request header (used by push-if-changed).
    pub last_visit: Option<i64>,
    /// Deterministic fault injection on this load's network path
    /// (`None` = clean network, the default). Every fault the plan
    /// draws replays identically for the same seed.
    pub fault_plan: Option<FaultPlan>,
    /// Retry budget per request: how many times a failed attempt
    /// (reset, truncation, stall timeout, injected 5xx) is retried
    /// before the error is delivered to the page.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per attempt, with
    /// seeded jitter.
    pub retry_base: Duration,
    /// Per-fetch timeout: a response that never starts (a stalled
    /// server) is abandoned after this long and the attempt retried.
    pub fetch_timeout: Duration,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_connections_per_origin: 6,
            http2: false,
            model_dns: false,
            tls: false,
            loss_rate: 0.0,
            loss_seed: 0,
            enable_swr: true,
            prioritize_render_blocking: true,
            server_think: Duration::from_millis(1),
            sw_overhead: Duration::from_micros(300),
            cache_overhead: Duration::from_micros(150),
            parse_base: Duration::from_millis(1),
            parse_bytes_per_sec: 50e6,
            exec_base: Duration::from_millis(2),
            exec_bytes_per_sec: 10e6,
            use_service_worker: false,
            use_http_cache: true,
            session: None,
            last_visit: None,
            fault_plan: None,
            max_retries: 3,
            retry_base: Duration::from_millis(50),
            fetch_timeout: Duration::from_secs(3),
        }
    }
}

/// The result of one page load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub trace: LoadTrace,
    /// Page load time (the `onLoad` moment).
    pub plt: SimTime,
    /// First-contentful-paint approximation: the base document and
    /// every render-blocking resource it references (stylesheets and
    /// synchronous scripts in the markup) are available. The paper
    /// defers FCP/SI/TTI to future work; this is the FCP part.
    pub fcp: SimTime,
    pub full_transfers: usize,
    pub not_modified: usize,
    pub cache_hits: usize,
    pub sw_hits: usize,
    pub bytes_down: u64,
    pub bytes_up: u64,
    /// Resources delivered ahead of request (push / bundle).
    pub pushed: usize,
    /// Pushed resources the page never asked for (wasted).
    pub pushed_unused: usize,
    /// Bytes spent on pushes.
    pub pushed_bytes: u64,
    /// Bytes spent on pushes the page never used.
    pub pushed_unused_bytes: u64,
    /// Stale responses served under `stale-while-revalidate` (each one
    /// also spawned a background revalidation).
    pub swr_served: usize,
    /// Faults the configured [`FaultPlan`] actually injected into
    /// this load (0 on a clean network).
    pub faults_injected: u32,
    /// Retry attempts the client made after failed exchanges.
    pub retries: u32,
    /// Fetches that completed degraded: they needed retries, fell
    /// back after a distrusted `X-Etag-Config` map, or delivered an
    /// error after exhausting the retry budget.
    pub degraded: usize,
    /// The cache-decision audit trail: one record per entry of
    /// `trace.fetches`, same order — how each resource was decided,
    /// which `X-Etag-Config` entry was consulted, in which churn
    /// epoch, and whether the served bytes were stale against the
    /// origin's current version.
    pub audits: Vec<CacheAudit>,
}

impl LoadReport {
    pub fn plt_ms(&self) -> f64 {
        self.plt.as_millis_f64()
    }

    pub fn fcp_ms(&self) -> f64 {
        self.fcp.as_millis_f64()
    }

    /// Round trips that touched the network.
    pub fn network_requests(&self) -> usize {
        self.full_transfers + self.not_modified
    }
}

type FetchId = usize;

#[derive(Debug)]
enum Pending {
    DnsDone(String),
    HandshakeDone(FetchId),
    UploadDone(FetchId),
    ServerTurn(FetchId),
    ServerDelayed(FetchId),
    DownloadDone(FetchId),
    LastByte(FetchId),
    Instant(FetchId),
    Parse(FetchId),
    Exec(FetchId),
    PushDone(FetchId),
    /// The backoff before a retry attempt elapsed.
    Retry(FetchId),
    /// A mid-body reset / truncation: the partial transfer "finished"
    /// but the bytes are unusable.
    TransferFailed(FetchId),
    /// The per-fetch timeout on a stalled response fired.
    TimedOut(FetchId),
}

struct FetchState {
    url: Url,
    req: Request,
    discovered: SimTime,
    started: Option<SimTime>,
    completed: Option<SimTime>,
    conn: Option<usize>,
    response: Option<Response>,
    delivered: Option<Response>,
    outcome: FetchOutcome,
    bytes_up: u64,
    bytes_down: u64,
    is_navigation: bool,
    is_push: bool,
    push_used: bool,
    /// Background revalidation: result updates the cache but does not
    /// gate onLoad and produces no page-visible content processing.
    is_background: bool,
    /// Round trips charged so far: DNS, handshake legs, the
    /// request/response exchange, retransmission timeouts.
    rtts: u32,
    /// This fetch's span id when the load is traced.
    span: Option<SpanId>,
    /// When the last request byte left the uplink (network fetches).
    t_upload_done: Option<SimTime>,
    /// When the response started flowing down (server turn taken,
    /// any proxy resolution delay paid).
    t_response_start: Option<SimTime>,
    /// The `X-Etag-Config` entry (or conditional validator) consulted
    /// for this fetch, for the audit trail.
    audit_etag: Option<String>,
    /// Whether the bytes handed to the page were stale against the
    /// origin's current version (`None` = unknowable).
    audit_stale: Option<bool>,
    /// The origin's churn epoch (from `x-cc-epoch`, traced loads).
    audit_epoch: Option<u64>,
    /// Zero-based attempt counter (0 = first try).
    attempt: u32,
    /// Set when a fault forced this fetch off its preferred path
    /// (retries, distrusted config map, exhausted retry budget).
    degraded: bool,
    /// The fault drawn for the current attempt, applied when the
    /// server's turn comes.
    pending_fault: Option<Fault>,
    /// Bytes of partial transfers wasted on failed attempts.
    bytes_wasted: u64,
    /// FNV-64 of the body handed to the page (the serve-correct-bytes
    /// oracle's comparand).
    body_digest: Option<u64>,
}

impl FetchState {
    /// A fetch in its initial state (not started, full transfer
    /// assumed until the serving decision says otherwise).
    fn new(url: Url, req: Request, discovered: SimTime) -> FetchState {
        FetchState {
            url,
            req,
            discovered,
            started: None,
            completed: None,
            conn: None,
            response: None,
            delivered: None,
            outcome: FetchOutcome::FullTransfer,
            bytes_up: 0,
            bytes_down: 0,
            is_navigation: false,
            is_push: false,
            push_used: false,
            is_background: false,
            rtts: 0,
            span: None,
            t_upload_done: None,
            t_response_start: None,
            audit_etag: None,
            audit_stale: None,
            audit_epoch: None,
            attempt: 0,
            degraded: false,
            pending_fault: None,
            bytes_wasted: 0,
            body_digest: None,
        }
    }
}

/// FNV-1a 64 over a body — the page-visible-bytes digest recorded on
/// the audit trail.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

struct ConnState {
    established: bool,
    busy: bool,
}

#[derive(Default)]
struct Pool {
    conns: Vec<ConnState>,
    /// High-priority waiters (render-blocking: HTML/CSS/JS).
    queue: VecDeque<FetchId>,
    /// Low-priority waiters (images, fonts, data).
    queue_low: VecDeque<FetchId>,
    /// DNS resolution state for the host (None = not started,
    /// Some(false) = in flight, Some(true) = resolved).
    dns: Option<bool>,
    /// Fetches parked on the DNS lookup.
    dns_pending: Vec<FetchId>,
}

impl Pool {
    fn pop_waiter(&mut self) -> Option<FetchId> {
        self.queue
            .pop_front()
            .or_else(|| self.queue_low.pop_front())
    }
}

/// One page load in progress. Borrows the browser's persistent state
/// (HTTP cache, service worker) for the duration of the load.
pub struct Engine<'a> {
    /// xorshift state for the seeded loss stream.
    loss_state: u64,
    /// The expanded fault plan, if one is configured.
    faults: Option<FaultSchedule>,
    /// xorshift state for retry-backoff jitter (its own stream, so
    /// jitter draws never shift the fault or loss schedules).
    jitter_state: u64,
    /// Faults actually injected into this load.
    n_faults: u32,
    /// Retry attempts made after failed exchanges.
    n_retries: u32,
    up: &'a dyn Upstream,
    cond: NetworkConditions,
    cfg: &'a EngineConfig,
    cache: &'a mut HttpCache,
    sw: &'a mut ServiceWorker,
    t_secs: i64,
    net: Network,
    uplink: LinkId,
    downlink: LinkId,
    fetches: Vec<FetchState>,
    pending: HashMap<u64, Pending>,
    next_token: u64,
    pools: HashMap<String, Pool>,
    requested: HashSet<String>,
    /// Responses already on the client (push / bundle), keyed by URL.
    predelivered: HashMap<String, Response>,
    /// Trace row of the push that delivered each URL.
    push_rows: HashMap<String, FetchId>,
    /// Pushes still in flight (PUSH_PROMISE semantics): a request for
    /// a promised URL waits for the pushed stream instead of
    /// refetching. url → (push row, waiting requester).
    push_inflight: HashMap<String, (FetchId, Option<FetchId>)>,
    /// Fetches that gate first paint: the navigation plus the CSS/JS
    /// referenced directly by the base document's markup.
    render_blocking: Vec<FetchId>,
    /// The navigation URL, used as the Referer of subresource fetches.
    navigation_url: Option<String>,
    /// Set when this load was sampled for tracing.
    tracer: Option<Tracer>,
    /// `(background revalidation, SWR-served fetch)` pairs: the
    /// revalidation's outcome resolves the served copy's staleness.
    swr_pairs: Vec<(FetchId, FetchId)>,
}

/// Tracing state for one sampled load: the trace id every span of
/// the load shares, the root span, and the sink spans land in.
struct Tracer {
    sink: Arc<SpanSink>,
    trace: TraceId,
    root: SpanId,
}

impl<'a> Engine<'a> {
    pub fn new(
        up: &'a dyn Upstream,
        cond: NetworkConditions,
        cfg: &'a EngineConfig,
        cache: &'a mut HttpCache,
        sw: &'a mut ServiceWorker,
        t_secs: i64,
    ) -> Engine<'a> {
        let mut net = Network::new();
        let downlink = net.add_link(cond.down_bps);
        let uplink = net.add_link(cond.up_bps);
        Engine {
            loss_state: cfg.loss_seed | 1,
            faults: cfg.fault_plan.as_ref().map(|p| p.schedule()),
            jitter_state: cfg
                .fault_plan
                .map(|p| p.seed ^ 0x9E37_79B9_7F4A_7C15)
                .unwrap_or(0)
                | 1,
            n_faults: 0,
            n_retries: 0,
            up,
            cond,
            cfg,
            cache,
            sw,
            t_secs,
            net,
            uplink,
            downlink,
            fetches: Vec::new(),
            pending: HashMap::new(),
            next_token: 0,
            pools: HashMap::new(),
            requested: HashSet::new(),
            predelivered: HashMap::new(),
            push_rows: HashMap::new(),
            push_inflight: HashMap::new(),
            render_blocking: Vec::new(),
            navigation_url: None,
            tracer: None,
            swr_pairs: Vec::new(),
        }
    }

    /// Samples this load against `sink`; when sampled, every fetch,
    /// phase and downstream (proxy/origin) hop records spans there,
    /// all sharing one fresh trace id rooted in a `page_load` span.
    pub fn with_span_sink(mut self, sink: &Arc<SpanSink>) -> Engine<'a> {
        if sink.sample() {
            self.tracer = Some(Tracer {
                sink: Arc::clone(sink),
                trace: TraceId::next(),
                root: SpanId::next(),
            });
        }
        self
    }

    /// Applies the shared [`ClientOptions`](crate::ClientOptions).
    /// The engine reads its resilience knobs from the [`EngineConfig`]
    /// it was built with, so only the span sink applies here; overlay
    /// the rest with [`crate::ClientOptions::apply_to`] *before*
    /// [`Engine::new`] (or use [`crate::Browser::with_options`], which
    /// does both).
    pub fn with_options(self, opts: &crate::ClientOptions) -> Engine<'a> {
        match &opts.spans {
            Some(spans) => self.with_span_sink(spans),
            None => self,
        }
    }

    /// Absolute virtual milliseconds for a sim instant (the page-load
    /// events' time base: `t_secs` plus the offset into the load).
    fn abs_ms(&self, t: SimTime) -> f64 {
        self.t_secs as f64 * 1000.0 + t.as_millis_f64()
    }

    /// Loads `base_url` to completion and reports.
    pub fn load(mut self, base_url: &Url) -> LoadReport {
        self.request_fetch(base_url.clone(), SimTime::ZERO, true);
        while let Some((now, ev)) = self.net.next() {
            let token = match ev {
                NetEvent::Timer(t) => t,
                NetEvent::FlowDone(_, t) => t,
            };
            let pending = self.pending.remove(&token).expect("unknown token fired");
            self.dispatch(pending, now);
        }
        self.finalize()
    }

    fn token(&mut self, p: Pending) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        self.pending.insert(t, p);
        t
    }

    fn dispatch(&mut self, pending: Pending, now: SimTime) {
        match pending {
            Pending::DnsDone(host) => {
                let pool = self.pools.get_mut(&host).expect("pool exists");
                pool.dns = Some(true);
                let parked = std::mem::take(&mut pool.dns_pending);
                for f in parked {
                    self.assign_conn(f, now);
                }
            }
            Pending::HandshakeDone(f) => {
                let host = self.fetches[f].url.host().to_owned();
                let conn = self.fetches[f].conn.expect("handshaking on a conn");
                let pool = self.pools.get_mut(&host).expect("pool exists");
                pool.conns[conn].established = true;
                if self.cfg.http2 {
                    // Multiplexed: everything parked on the handshake
                    // proceeds at once.
                    let parked: Vec<FetchId> =
                        std::iter::once(f).chain(pool.queue.drain(..)).collect();
                    for w in parked {
                        self.fetches[w].conn = Some(conn);
                        self.start_upload(w, now);
                    }
                } else {
                    self.start_upload(f, now);
                }
            }
            Pending::UploadDone(f) => {
                self.fetches[f].t_upload_done = Some(now);
                let loss = self.loss_penalty();
                self.fetches[f].rtts += 1 + if loss > Duration::ZERO { 2 } else { 0 };
                let mut dt = self.cond.one_way() + self.cfg.server_think + loss;
                // One fault draw per request attempt. Loss bursts act
                // on the request path right here; everything else is
                // applied when the server's turn comes.
                match self.draw_fault(f) {
                    Some(Fault::LossBurst { timeouts }) => {
                        self.n_faults += 1;
                        self.fetches[f].rtts += 2 * timeouts;
                        dt += self.cond.rtt * 2 * timeouts;
                    }
                    fault => self.fetches[f].pending_fault = fault,
                }
                let tok = self.token(Pending::ServerTurn(f));
                self.net.set_timer(dt, tok);
            }
            Pending::ServerTurn(f) => {
                // Re-stamp the trace context with the virtual clock at
                // the server turn, so server-side spans sit at the
                // right place on the load's timeline. (The header was
                // first injected unstamped at request creation; the
                // uploaded byte count was measured then and the stamp
                // is in-process metadata, like `x-cc-server-delay-ms`.)
                if let Some(tracer) = &self.tracer {
                    if let Some(span) = self.fetches[f].span {
                        let ctx = TraceContext::new(tracer.trace, span).at(self.abs_ms(now));
                        tracectx::inject(&mut self.fetches[f].req, &ctx);
                    }
                }
                let fault = self.fetches[f].pending_fault.take();
                // A stalled server never answers; only the client's
                // fetch timeout recovers the attempt.
                if let Some(Fault::Stall) = fault {
                    self.n_faults += 1;
                    let tok = self.token(Pending::TimedOut(f));
                    self.net.set_timer(self.cfg.fetch_timeout, tok);
                    return;
                }
                let mut resp = self.up.handle(
                    self.fetches[f].url.host(),
                    &self.fetches[f].req,
                    self.t_secs,
                );
                let mut fault_delay_ms = 0u64;
                match fault {
                    Some(Fault::ServerError { status }) => {
                        self.n_faults += 1;
                        resp = Response::empty(StatusCode::new(status).expect("5xx is valid"))
                            .with_header(ext::X_FAULT, "server-error");
                    }
                    Some(Fault::Delay { ms }) | Some(Fault::SlowStart { ms }) => {
                        self.n_faults += 1;
                        fault_delay_ms = ms;
                    }
                    // Tampering counts as a fault only when the
                    // response actually carried a map to damage.
                    Some(Fault::CorruptConfigEntry { salt })
                        if tamper_config_headers(&mut resp, Some(salt)) =>
                    {
                        self.n_faults += 1;
                    }
                    Some(Fault::StaleConfigEntry) if tamper_config_headers(&mut resp, None) => {
                        self.n_faults += 1;
                    }
                    _ => {}
                }
                let extra_delay = resp
                    .headers
                    .get(ext::X_SERVER_DELAY_MS)
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
                    + fault_delay_ms;
                let bytes = resp.wire_len() as u64;
                // Mid-body reset / truncation: only a prefix of the
                // response crosses the wire, then the attempt fails.
                if let Some(Fault::ResetMidBody { fraction } | Fault::TruncateBody { fraction }) =
                    fault
                {
                    self.n_faults += 1;
                    let partial = ((bytes as f64 * fraction) as u64).max(1);
                    self.fetches[f].bytes_down = partial;
                    self.fetches[f].t_response_start = Some(now);
                    let tok = self.token(Pending::TransferFailed(f));
                    self.net
                        .start_flow_or_timer(self.downlink, tok, partial, tok);
                    return;
                }
                self.fetches[f].bytes_down = bytes;
                self.fetches[f].response = Some(resp);
                if extra_delay > 0 {
                    let tok = self.token(Pending::ServerDelayed(f));
                    self.net.set_timer(Duration::from_millis(extra_delay), tok);
                } else {
                    self.fetches[f].t_response_start = Some(now);
                    self.start_download(f);
                }
            }
            Pending::ServerDelayed(f) => {
                self.fetches[f].t_response_start = Some(now);
                self.start_download(f);
            }
            Pending::DownloadDone(f) => {
                let tok = self.token(Pending::LastByte(f));
                self.net.set_timer(self.cond.one_way(), tok);
            }
            Pending::LastByte(f) => {
                self.release_conn(f, now);
                let resp = self.fetches[f].response.take().expect("response set");
                // Under a fault plan, a 5xx on an idempotent GET is
                // retried (with backoff) while budget remains; only
                // after exhaustion is the error delivered to the page.
                if self.faults.is_some()
                    && resp.status.is_server_error()
                    && self.fetches[f].attempt < self.cfg.max_retries
                {
                    self.schedule_retry(f);
                    return;
                }
                if resp.status.is_server_error() && self.fetches[f].attempt > 0 {
                    self.fetches[f].degraded = true;
                }
                self.deliver_network(f, resp, now);
            }
            Pending::Instant(f) => {
                let resp = self.fetches[f].response.take().expect("local response");
                self.complete(f, resp, now);
            }
            Pending::Parse(f) => self.on_parse(f, now),
            Pending::Exec(f) => self.on_exec(f, now),
            Pending::PushDone(f) => {
                self.fetches[f].completed = Some(now);
                let resp = self.fetches[f].response.take().expect("pushed body");
                let url = self.fetches[f].url.to_string();
                self.push_rows.insert(url.clone(), f);
                let waiter = self
                    .push_inflight
                    .remove(&url)
                    .and_then(|(_, waiter)| waiter);
                match waiter {
                    Some(w) => {
                        // The page asked while the push was in flight:
                        // the stream's completion answers the request.
                        self.fetches[f].push_used = true;
                        self.fetches[w].outcome = FetchOutcome::Pushed;
                        self.fetches[w].started.get_or_insert(now);
                        self.complete(w, resp, now);
                    }
                    None => {
                        self.predelivered.insert(url, resp);
                    }
                }
            }
            Pending::TransferFailed(f) => {
                // The connection died mid-body: the partial bytes are
                // wasted and the attempt failed.
                let partial = self.fetches[f].bytes_down;
                self.fetches[f].bytes_wasted += partial;
                self.fetches[f].bytes_down = 0;
                self.fetches[f].response = None;
                self.abandon_conn(f);
                self.fail_attempt(f, now);
            }
            Pending::TimedOut(f) => {
                // The stalled attempt's timeout: abandon the dead
                // connection and retry.
                self.abandon_conn(f);
                self.fail_attempt(f, now);
            }
            Pending::Retry(f) => {
                // Backoff elapsed: re-enter the pool for a fresh
                // attempt (same request, next draw of the schedule).
                self.assign_to_pool(f, now);
            }
        }
    }

    /// Draws this attempt's fault, if a plan is configured. Internal
    /// push/bundle materializations never reach this path, so only
    /// real client requests are faulted.
    fn draw_fault(&mut self, f: FetchId) -> Option<Fault> {
        let attempt = self.fetches[f].attempt;
        self.faults.as_mut().and_then(|s| s.draw(attempt))
    }

    /// A failed attempt: retry with exponential backoff + jitter while
    /// budget remains, else deliver a synthesized error so the page
    /// completes instead of hanging.
    fn fail_attempt(&mut self, f: FetchId, now: SimTime) {
        self.fetches[f].degraded = true;
        if self.fetches[f].attempt < self.cfg.max_retries {
            self.schedule_retry(f);
            return;
        }
        let resp =
            Response::empty(StatusCode::GATEWAY_TIMEOUT).with_header(ext::X_FAULT, "gave-up");
        self.deliver_network(f, resp, now);
    }

    /// Arms the backoff timer for the next attempt of `f`:
    /// `retry_base · 2^attempt`, scaled by up to +50% seeded jitter.
    fn schedule_retry(&mut self, f: FetchId) {
        let attempt = self.fetches[f].attempt;
        self.fetches[f].attempt = attempt + 1;
        self.fetches[f].degraded = true;
        self.n_retries += 1;
        let base = self.cfg.retry_base.as_secs_f64() * (1u64 << attempt.min(16)) as f64;
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        let jitter = (x >> 11) as f64 / (1u64 << 53) as f64;
        let backoff = Duration::from_secs_f64(base * (1.0 + 0.5 * jitter));
        let tok = self.token(Pending::Retry(f));
        self.net.set_timer(backoff, tok);
    }

    /// Marks `f`'s connection dead (the peer reset or went silent):
    /// the slot stays in the pool but must be re-established before
    /// reuse. HTTP/2 treats the failure as stream-level and keeps the
    /// connection.
    fn abandon_conn(&mut self, f: FetchId) {
        let Some(idx) = self.fetches[f].conn.take() else {
            return;
        };
        if self.cfg.http2 {
            return;
        }
        let host = self.fetches[f].url.host().to_owned();
        let pool = self.pools.get_mut(&host).expect("pool exists");
        pool.conns[idx].busy = false;
        pool.conns[idx].established = false;
        // A waiter can take the slot, paying the fresh handshake.
        if let Some(next) = pool.pop_waiter() {
            pool.conns[idx].busy = true;
            self.fetches[next].conn = Some(idx);
            let tok = self.token(Pending::HandshakeDone(next));
            let dt = self.handshake_time(next);
            self.net.set_timer(dt, tok);
        }
    }

    fn start_download(&mut self, f: FetchId) {
        let bytes = self.fetches[f].bytes_down;
        let tok = self.token(Pending::DownloadDone(f));
        self.net.start_flow_or_timer(self.downlink, tok, bytes, tok);
    }

    // ---- fetch initiation ----

    fn request_fetch(&mut self, url: Url, now: SimTime, is_navigation: bool) {
        let key = url.to_string();
        if !self.requested.insert(key) {
            return;
        }
        let path = url.path().to_owned();
        let mut req = Request::get(&url.target().to_string())
            .with_header(HeaderName::HOST, &url.authority())
            .with_header(HeaderName::USER_AGENT, "cachecatalyst-browser/0.1");
        if let Some(session) = &self.cfg.session {
            req.headers
                .insert("cookie", &format!("cc-session={session}"));
        }
        if let Some(last) = self.cfg.last_visit {
            req.headers.insert(ext::X_LAST_VISIT, &last.to_string());
        }
        if is_navigation {
            self.navigation_url = Some(url.to_string());
        } else if let Some(nav) = &self.navigation_url {
            req.headers.insert("referer", nav);
        }

        let f = self.fetches.len();
        self.fetches.push(FetchState {
            is_navigation,
            ..FetchState::new(url.clone(), req, now)
        });
        if is_navigation {
            self.render_blocking.push(f);
        }
        // Traced loads: give the fetch its span id and put the trace
        // context on the outgoing request (re-stamped with the virtual
        // clock at the server turn).
        if let Some(tracer) = &self.tracer {
            let span = SpanId::next();
            self.fetches[f].span = Some(span);
            tracectx::inject(
                &mut self.fetches[f].req,
                &TraceContext::new(tracer.trace, span),
            );
        }

        // --- the serving decision ---
        if self.cfg.use_service_worker {
            if is_navigation {
                // Navigations always go upstream; attach the SW's
                // stored validator so an unchanged page costs a 304.
                if let Some(tag) = self.sw.cached_etag(&url.to_string()) {
                    let tag = tag.to_string();
                    self.fetches[f].audit_etag = Some(tag.clone());
                    self.fetches[f]
                        .req
                        .headers
                        .insert(HeaderName::IF_NONE_MATCH, &tag);
                }
            } else {
                let url_str = url.to_string();
                // The `X-Etag-Config` entry consulted for this
                // resource (same-origin keyed by path, cross-origin by
                // full URL) — recorded on the audit trail.
                let consulted = self
                    .sw
                    .config()
                    .get(&path)
                    .or_else(|| self.sw.config().get(&url_str))
                    .cloned();
                self.fetches[f].audit_etag = consulted.as_ref().map(|t| t.to_string());
                match self.sw.intercept(&url_str, &path) {
                    SwDecision::ServeLocal(resp) => {
                        // Staleness oracle: the served bytes are the
                        // cached entry; the consulted entry is the
                        // origin's *current* version (the map was
                        // installed by this very navigation). A serve
                        // despite mismatch would be a catalyst bug.
                        let served = self.sw.cached_etag(&url_str);
                        self.fetches[f].audit_stale = match (served, &consulted) {
                            (Some(s), Some(c)) => Some(!(s.strong_eq(c) || s.weak_eq(c))),
                            _ => None,
                        };
                        self.fetches[f].outcome = FetchOutcome::ServiceWorkerHit;
                        self.fetches[f].response = Some(resp);
                        let tok = self.token(Pending::Instant(f));
                        self.net.set_timer(self.cfg.sw_overhead, tok);
                        return;
                    }
                    SwDecision::Forward { if_none_match } => {
                        if let Some(tag) = if_none_match {
                            let tag = tag.to_string();
                            if self.fetches[f].audit_etag.is_none() {
                                self.fetches[f].audit_etag = Some(tag.clone());
                            }
                            self.fetches[f]
                                .req
                                .headers
                                .insert(HeaderName::IF_NONE_MATCH, &tag);
                        }
                    }
                }
            }
        } else if self.cfg.use_http_cache {
            let lookup = {
                let req = &self.fetches[f].req;
                self.cache.lookup_for(&url.to_string(), req, self.t_secs)
            };
            match lookup {
                Lookup::Fresh(resp) => {
                    self.fetches[f].outcome = FetchOutcome::CacheHit;
                    self.fetches[f].response = Some(resp);
                    let tok = self.token(Pending::Instant(f));
                    self.net.set_timer(self.cfg.cache_overhead, tok);
                    return;
                }
                Lookup::Stale {
                    response,
                    etag,
                    last_modified,
                    swr_usable,
                } => {
                    if swr_usable && self.cfg.enable_swr {
                        // RFC 5861: serve the stale copy now, refresh
                        // in the background.
                        self.fetches[f].outcome = FetchOutcome::CacheHit;
                        self.fetches[f].response = Some(response);
                        let tok = self.token(Pending::Instant(f));
                        self.net.set_timer(self.cfg.cache_overhead, tok);
                        self.spawn_background_revalidation(
                            url.clone(),
                            etag,
                            last_modified,
                            now,
                            f,
                        );
                        return;
                    }
                    if let Some(tag) = etag {
                        self.fetches[f].audit_etag = Some(tag.clone());
                        self.fetches[f]
                            .req
                            .headers
                            .insert(HeaderName::IF_NONE_MATCH, &tag);
                    } else if let Some(lm) = last_modified {
                        self.fetches[f]
                            .req
                            .headers
                            .insert(HeaderName::IF_MODIFIED_SINCE, &lm);
                    }
                }
                Lookup::Miss => {}
            }
        }
        // Pushed / bundled bodies that arrived ahead of the request are
        // used before going to the network (but never shadow a fresh
        // cache or SW hit, matching browsers' push-cache precedence).
        if self.try_predelivered(f) {
            return;
        }
        self.assign_to_pool(f, now);
    }

    /// Issues a conditional request that refreshes the cache without
    /// gating onLoad (the revalidation half of stale-while-revalidate).
    fn spawn_background_revalidation(
        &mut self,
        url: Url,
        etag: Option<String>,
        last_modified: Option<String>,
        now: SimTime,
        served: FetchId,
    ) {
        let mut req = Request::get(&url.target().to_string())
            .with_header(HeaderName::HOST, &url.authority())
            .with_header(HeaderName::USER_AGENT, "cachecatalyst-browser/0.1");
        if let Some(tag) = etag {
            req.headers.insert(HeaderName::IF_NONE_MATCH, &tag);
        } else if let Some(lm) = last_modified {
            req.headers.insert(HeaderName::IF_MODIFIED_SINCE, &lm);
        }
        let f = self.fetches.len();
        self.fetches.push(FetchState {
            outcome: FetchOutcome::NotModified,
            is_background: true,
            ..FetchState::new(url, req, now)
        });
        if let Some(tracer) = &self.tracer {
            let span = SpanId::next();
            self.fetches[f].span = Some(span);
            tracectx::inject(
                &mut self.fetches[f].req,
                &TraceContext::new(tracer.trace, span),
            );
        }
        // The revalidation outcome doubles as the staleness oracle for
        // the SWR-served response it refreshes (see `finalize`).
        self.swr_pairs.push((f, served));
        self.assign_to_pool(f, now);
    }

    /// Serves `f` from the predelivered set (or parks it on an
    /// in-flight push promise) if possible.
    fn try_predelivered(&mut self, f: FetchId) -> bool {
        let key = self.fetches[f].url.to_string();
        if let Some(resp) = self.predelivered.remove(&key) {
            if let Some(&pf) = self.push_rows.get(&key) {
                self.fetches[pf].push_used = true;
            }
            self.fetches[f].outcome = FetchOutcome::Pushed;
            self.fetches[f].response = Some(resp);
            let tok = self.token(Pending::Instant(f));
            self.net.set_timer(self.cfg.cache_overhead, tok);
            return true;
        }
        if let Some(entry) = self.push_inflight.get_mut(&key) {
            debug_assert!(entry.1.is_none(), "one requester per URL");
            entry.1 = Some(f);
            return true;
        }
        false
    }

    // ---- connection pool ----

    fn assign_to_pool(&mut self, f: FetchId, now: SimTime) {
        if self.cfg.model_dns {
            let host = self.fetches[f].url.host().to_owned();
            let pool = self.pools.entry(host.clone()).or_default();
            match pool.dns {
                Some(true) => {}
                Some(false) => {
                    pool.dns_pending.push(f);
                    return;
                }
                None => {
                    pool.dns = Some(false);
                    pool.dns_pending.push(f);
                    // The fetch that triggers the lookup pays its RTT;
                    // later fetches just park on the resolution.
                    self.fetches[f].rtts += 1;
                    let tok = self.token(Pending::DnsDone(host));
                    self.net.set_timer(self.cond.rtt, tok);
                    return;
                }
            }
        }
        self.assign_conn(f, now);
    }

    fn assign_conn(&mut self, f: FetchId, now: SimTime) {
        let host = self.fetches[f].url.host().to_owned();
        let max = self.cfg.max_connections_per_origin;
        if self.cfg.http2 {
            let pool = self.pools.entry(host).or_default();
            match pool.conns.first() {
                None => {
                    pool.conns.push(ConnState {
                        established: false,
                        busy: true,
                    });
                    self.fetches[f].conn = Some(0);
                    let tok = self.token(Pending::HandshakeDone(f));
                    let dt = self.handshake_time(f);
                    self.net.set_timer(dt, tok);
                }
                Some(c) if !c.established => pool.queue.push_back(f),
                Some(_) => {
                    self.fetches[f].conn = Some(0);
                    self.start_upload(f, now);
                }
            }
            return;
        }
        let pool = self.pools.entry(host).or_default();
        // Prefer an idle, established connection.
        if let Some(idx) = pool.conns.iter().position(|c| !c.busy && c.established) {
            pool.conns[idx].busy = true;
            self.fetches[f].conn = Some(idx);
            self.start_upload(f, now);
            return;
        }
        // A dead slot (abandoned after a reset/stall) is reused with a
        // fresh handshake, so faults never leak pool capacity.
        if let Some(idx) = pool.conns.iter().position(|c| !c.busy && !c.established) {
            pool.conns[idx].busy = true;
            self.fetches[f].conn = Some(idx);
            let tok = self.token(Pending::HandshakeDone(f));
            let dt = self.handshake_time(f);
            self.net.set_timer(dt, tok);
            return;
        }
        if pool.conns.len() < max {
            pool.conns.push(ConnState {
                established: false,
                busy: true,
            });
            let idx = pool.conns.len() - 1;
            self.fetches[f].conn = Some(idx);
            let tok = self.token(Pending::HandshakeDone(f));
            let dt = self.handshake_time(f);
            self.net.set_timer(dt, tok);
            return;
        }
        let high = !self.cfg.prioritize_render_blocking
            || matches!(
                ResourceKind::from_path(self.fetches[f].url.path()),
                ResourceKind::Html | ResourceKind::Css | ResourceKind::Js
            );
        let host = self.fetches[f].url.host().to_owned();
        let pool = self.pools.get_mut(&host).expect("pool");
        if high {
            pool.queue.push_back(f);
        } else {
            pool.queue_low.push_back(f);
        }
    }

    /// TCP (+ optional TLS 1.3) connection establishment time, charged
    /// to the fetch opening the connection.
    fn handshake_time(&mut self, f: FetchId) -> Duration {
        let mut dt = self.cond.rtt;
        let mut rtts = 1u32;
        if self.cfg.tls {
            dt += self.cond.rtt;
            rtts += 1;
        }
        let loss = self.loss_penalty();
        if loss > Duration::ZERO {
            rtts += 2;
        }
        self.fetches[f].rtts += rtts;
        dt + loss
    }

    /// Draws from the seeded loss stream: with probability
    /// `loss_rate`, one retransmission timeout (+2×RTT).
    fn loss_penalty(&mut self) -> Duration {
        if self.cfg.loss_rate <= 0.0 {
            return Duration::ZERO;
        }
        // xorshift64*: deterministic, decoupled from workload seeds.
        let mut x = self.loss_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.loss_state = x;
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        if u < self.cfg.loss_rate {
            self.cond.rtt * 2
        } else {
            Duration::ZERO
        }
    }

    fn release_conn(&mut self, f: FetchId, now: SimTime) {
        if self.cfg.http2 {
            return; // streams do not occupy the connection
        }
        let host = self.fetches[f].url.host().to_owned();
        let Some(idx) = self.fetches[f].conn.take() else {
            return;
        };
        let pool = self.pools.get_mut(&host).expect("pool exists");
        pool.conns[idx].busy = false;
        if let Some(next) = pool.pop_waiter() {
            pool.conns[idx].busy = true;
            self.fetches[next].conn = Some(idx);
            self.start_upload(next, now);
        }
    }

    fn start_upload(&mut self, f: FetchId, now: SimTime) {
        if self.fetches[f].started.is_none() {
            self.fetches[f].started = Some(now);
        }
        let bytes = encode_request(&self.fetches[f].req).len() as u64;
        self.fetches[f].bytes_up = bytes;
        let tok = self.token(Pending::UploadDone(f));
        self.net.start_flow_or_timer(self.uplink, tok, bytes, tok);
    }

    // ---- delivery ----

    /// Remembers the origin's churn epoch (`x-cc-epoch`, attached to
    /// responses of traced requests) for the audit trail. Cached/SW
    /// copies keep the header from when they were fetched, so local
    /// hits attribute to the epoch their bytes came from.
    fn note_epoch(&mut self, f: FetchId, resp: &Response) {
        if self.fetches[f].audit_epoch.is_none() {
            if let Some(v) = resp.headers.get(HeaderName::X_CC_EPOCH) {
                self.fetches[f].audit_epoch = v.parse().ok();
            }
        }
    }

    fn deliver_network(&mut self, f: FetchId, mut resp: Response, now: SimTime) {
        self.note_epoch(f, &resp);
        // Integrity gate for the catalyst map: a navigation response
        // whose `X-Etag-Config` fails its digest is stripped of the
        // map *before* the service worker sees it — the SW then clears
        // its config and every subresource falls back to a
        // conditional/full fetch (graceful degradation, never a serve
        // from tampered state).
        if self.fetches[f].is_navigation
            && self.cfg.use_service_worker
            && matches!(
                EtagConfig::verify_headers(&resp.headers),
                ConfigIntegrity::Tampered
            )
        {
            resp.headers.remove(HeaderName::X_ETAG_CONFIG);
            resp.headers.remove(HeaderName::X_CC_CONFIG_DIGEST);
            self.fetches[f].degraded = true;
        }
        let url = self.fetches[f].url.to_string();
        if self.fetches[f].is_background {
            self.fetches[f].completed = Some(now);
            self.fetches[f].outcome = if resp.status == StatusCode::NOT_MODIFIED {
                FetchOutcome::NotModified
            } else {
                FetchOutcome::FullTransfer
            };
            if resp.status == StatusCode::NOT_MODIFIED {
                let _ = self
                    .cache
                    .update_with_304(&url, &resp, self.t_secs, self.t_secs);
            } else {
                self.cache
                    .store(&url, &self.fetches[f].req, &resp, self.t_secs, self.t_secs);
            }
            return;
        }
        let is_nav = self.fetches[f].is_navigation;
        let delivered;
        if self.cfg.use_service_worker {
            if is_nav {
                // The navigation response (200 or 304) carries the
                // fresh X-Etag-Config; install it, then resolve the
                // body through the SW cache.
                self.sw.on_navigation(&resp);
            }
            self.fetches[f].outcome = if resp.status == StatusCode::NOT_MODIFIED {
                FetchOutcome::NotModified
            } else {
                FetchOutcome::FullTransfer
            };
            delivered = self.sw.on_response(&url, &resp);
        } else if self.cfg.use_http_cache {
            if resp.status == StatusCode::NOT_MODIFIED {
                self.fetches[f].outcome = FetchOutcome::NotModified;
                delivered = self
                    .cache
                    .update_with_304(&url, &resp, self.t_secs, self.t_secs)
                    .unwrap_or(resp);
            } else {
                self.fetches[f].outcome = FetchOutcome::FullTransfer;
                self.cache
                    .store(&url, &self.fetches[f].req, &resp, self.t_secs, self.t_secs);
                delivered = resp;
            }
        } else {
            self.fetches[f].outcome = FetchOutcome::FullTransfer;
            delivered = resp;
        }
        self.complete(f, delivered, now);
    }

    /// A response is now available to the page: record it and schedule
    /// content processing (parse / execute).
    fn complete(&mut self, f: FetchId, delivered: Response, now: SimTime) {
        self.note_epoch(f, &delivered);
        self.fetches[f].completed = Some(now);
        // The audit digest covers the bytes the page actually sees.
        if !delivered.body.is_empty() {
            self.fetches[f].body_digest = Some(fnv64(&delivered.body));
        }
        // Pushed/bundled responses enter the regular caches, exactly
        // as browsers admit pushed streams into the HTTP cache.
        if self.fetches[f].outcome == FetchOutcome::Pushed {
            let url = self.fetches[f].url.to_string();
            if self.cfg.use_service_worker {
                let _ = self.sw.on_response(&url, &delivered);
            } else if self.cfg.use_http_cache {
                self.cache.store(
                    &url,
                    &self.fetches[f].req,
                    &delivered,
                    self.t_secs,
                    self.t_secs,
                );
            }
        }
        if !delivered.status.is_success() {
            self.fetches[f].delivered = Some(delivered);
            return;
        }
        let kind = ResourceKind::from_path(self.fetches[f].url.path());
        let len = delivered.body.len() as f64;
        match kind {
            ResourceKind::Html | ResourceKind::Css => {
                let dt = self.cfg.parse_base
                    + Duration::from_secs_f64(len / self.cfg.parse_bytes_per_sec);
                let tok = self.token(Pending::Parse(f));
                self.net.set_timer(dt, tok);
            }
            ResourceKind::Js => {
                let dt =
                    self.cfg.exec_base + Duration::from_secs_f64(len / self.cfg.exec_bytes_per_sec);
                let tok = self.token(Pending::Exec(f));
                self.net.set_timer(dt, tok);
            }
            _ => {}
        }
        let is_nav = self.fetches[f].is_navigation;
        self.fetches[f].delivered = Some(delivered);
        if is_nav {
            self.handle_predelivery(f, now);
        }
    }

    /// Materializes server-push and RDR-bundle announcements carried
    /// on the navigation response.
    fn handle_predelivery(&mut self, f: FetchId, now: SimTime) {
        let delivered = self.fetches[f].delivered.clone().expect("just set");
        let base = self.fetches[f].url.clone();
        // Internal materialization requests carry the trace context
        // too, parented under the navigation's span (bundles) or the
        // push row's own span, so origin work they cause is attributed.
        let nav_ctx = self.tracer.as_ref().and_then(|tracer| {
            self.fetches[f]
                .span
                .map(|span| TraceContext::new(tracer.trace, span).at(self.abs_ms(now)))
        });
        // RDR bundle: bodies already arrived inside the bundle body;
        // make them instantly available.
        if let Some(list) = delivered.headers.get_combined(ext::X_RDR_BUNDLE) {
            for path in list.split(',').filter(|p| !p.trim().is_empty()) {
                let Ok(url) = base.join(path.trim()) else {
                    continue;
                };
                let mut req = Request::get(&url.target().to_string())
                    .with_header(HeaderName::HOST, &url.authority())
                    .with_header(ext::X_INTERNAL, "bundle");
                if let Some(ctx) = &nav_ctx {
                    tracectx::inject(&mut req, ctx);
                }
                let resp = self.up.handle(url.host(), &req, self.t_secs);
                if resp.status.is_success() {
                    self.predelivered.insert(url.to_string(), resp);
                }
            }
        }
        // Server push: bodies stream down after the navigation
        // response, sharing the downlink with everything else.
        if let Some(list) = delivered.headers.get_combined(ext::X_PUSHED) {
            for path in list.split(',').filter(|p| !p.trim().is_empty()) {
                let Ok(url) = base.join(path.trim()) else {
                    continue;
                };
                let key = url.to_string();
                if self.requested.contains(&key) || self.predelivered.contains_key(&key) {
                    continue;
                }
                let push_span = self.tracer.as_ref().map(|_| SpanId::next());
                let mut req = Request::get(&url.target().to_string())
                    .with_header(HeaderName::HOST, &url.authority())
                    .with_header(ext::X_INTERNAL, "push");
                if let (Some(tracer), Some(span)) = (&self.tracer, push_span) {
                    tracectx::inject(
                        &mut req,
                        &TraceContext::new(tracer.trace, span).at(self.abs_ms(now)),
                    );
                }
                let resp = self.up.handle(url.host(), &req, self.t_secs);
                if !resp.status.is_success() {
                    continue;
                }
                let bytes = resp.wire_len() as u64;
                let pf = self.fetches.len();
                self.fetches.push(FetchState {
                    started: Some(now),
                    response: Some(resp),
                    outcome: FetchOutcome::Pushed,
                    bytes_down: bytes,
                    is_push: true,
                    span: push_span,
                    ..FetchState::new(url, req, now)
                });
                self.push_inflight.insert(key, (pf, None));
                let tok = self.token(Pending::PushDone(pf));
                self.net.start_flow_or_timer(self.downlink, tok, bytes, tok);
            }
        }
    }

    fn on_parse(&mut self, f: FetchId, now: SimTime) {
        let Some(delivered) = self.fetches[f].delivered.clone() else {
            return;
        };
        let Ok(text) = std::str::from_utf8(&delivered.body) else {
            return;
        };
        let kind = ResourceKind::from_path(self.fetches[f].url.path());
        let links: Vec<String> = match kind {
            ResourceKind::Html => extract_html_links(text)
                .into_iter()
                .map(|l| l.href)
                .collect(),
            _ => extract_css_links(text)
                .into_iter()
                .map(|l| l.href)
                .collect(),
        };
        let base = self.fetches[f].url.clone();
        let from_navigation = self.fetches[f].is_navigation;
        for href in links {
            if href == cachecatalyst_catalyst::SW_SCRIPT_PATH {
                continue; // SW registration is out-of-band, not a subresource
            }
            if let Ok(url) = base.join(&href) {
                let next_id = self.fetches.len();
                let before = self.requested.len();
                self.request_fetch(url.clone(), now, false);
                let created = self.requested.len() > before;
                // Stylesheets and scripts referenced by the base
                // document's markup block first paint.
                if created
                    && from_navigation
                    && matches!(
                        ResourceKind::from_path(url.path()),
                        ResourceKind::Css | ResourceKind::Js
                    )
                {
                    self.render_blocking.push(next_id);
                }
            }
        }
    }

    fn on_exec(&mut self, f: FetchId, now: SimTime) {
        let Some(delivered) = self.fetches[f].delivered.clone() else {
            return;
        };
        let Ok(text) = std::str::from_utf8(&delivered.body) else {
            return;
        };
        let base = self.fetches[f].url.clone();
        for href in cachecatalyst_webmodel::jsdialect::evaluate(text) {
            if let Ok(url) = base.join(&href) {
                self.request_fetch(url, now, false);
            }
        }
    }

    fn finalize(self) -> LoadReport {
        let mut trace = LoadTrace::default();
        let mut full = 0;
        let mut nm = 0;
        let mut cache_hits = 0;
        let mut sw_hits = 0;
        let mut pushed = 0;
        let mut pushed_unused = 0;
        let mut pushed_bytes = 0u64;
        let mut pushed_unused_bytes = 0u64;
        let mut background = 0;
        let mut plt = SimTime::ZERO;
        for f in &self.fetches {
            let completed = f.completed.unwrap_or(f.discovered);
            if f.is_background {
                background += 1;
            } else if f.is_push {
                pushed += 1;
                pushed_bytes += f.bytes_down;
                if !f.push_used {
                    pushed_unused += 1;
                    pushed_unused_bytes += f.bytes_down;
                }
            } else {
                // onLoad waits for requested resources, not for
                // speculative pushes the page never asked for.
                plt = plt.max(completed);
                match f.outcome {
                    FetchOutcome::FullTransfer => full += 1,
                    FetchOutcome::NotModified => nm += 1,
                    FetchOutcome::CacheHit => cache_hits += 1,
                    FetchOutcome::ServiceWorkerHit => sw_hits += 1,
                    FetchOutcome::Pushed => {}
                }
            }
            trace.fetches.push(FetchTrace {
                url: f.url.to_string(),
                discovered: f.discovered,
                started: f.started.unwrap_or(f.discovered),
                completed,
                outcome: f.outcome,
                // Wasted partial transfers count: the wire carried them.
                bytes_down: f.bytes_down + f.bytes_wasted,
                bytes_up: f.bytes_up,
                rtts: f.rtts,
                upload_done: f.t_upload_done,
                response_start: f.t_response_start,
            });
        }
        let bytes_down = trace.bytes_down();
        let bytes_up = trace.bytes_up();
        let fcp = self
            .render_blocking
            .iter()
            .filter_map(|&f| self.fetches[f].completed)
            .max()
            .unwrap_or(plt);
        let degraded = self.fetches.iter().filter(|f| f.degraded).count();
        let audits = self.collect_audits();
        if let Some(tracer) = &self.tracer {
            self.emit_spans(tracer, plt);
        }
        LoadReport {
            trace,
            plt,
            fcp,
            full_transfers: full,
            not_modified: nm,
            cache_hits,
            sw_hits,
            bytes_down,
            bytes_up,
            pushed,
            pushed_unused,
            pushed_bytes,
            pushed_unused_bytes,
            // One background revalidation per SWR-served response.
            swr_served: background,
            faults_injected: self.n_faults,
            retries: self.n_retries,
            degraded,
            audits,
        }
    }

    /// One [`CacheAudit`] per fetch, same order as `trace.fetches`.
    fn collect_audits(&self) -> Vec<CacheAudit> {
        let mut audits: Vec<CacheAudit> = self
            .fetches
            .iter()
            .map(|f| {
                let decision = if f.degraded {
                    // A fault pushed this fetch off its preferred
                    // path; the audit says so regardless of how the
                    // fallback was ultimately satisfied.
                    CacheDecision::Degraded
                } else {
                    match f.outcome {
                        FetchOutcome::ServiceWorkerHit => CacheDecision::SwHitZeroRtt,
                        FetchOutcome::NotModified => CacheDecision::Conditional304,
                        FetchOutcome::FullTransfer => CacheDecision::FullFetch,
                        FetchOutcome::CacheHit | FetchOutcome::Pushed => CacheDecision::Bypass,
                    }
                };
                let served_stale = match f.outcome {
                    // Validated (or freshly transferred / pushed at the
                    // current t): the delivered bytes match the origin.
                    FetchOutcome::NotModified
                    | FetchOutcome::FullTransfer
                    | FetchOutcome::Pushed => Some(false),
                    // SW hits carry the oracle verdict from intercept
                    // time; classic freshness hits are unknowable
                    // unless an SWR revalidation resolves them below.
                    FetchOutcome::ServiceWorkerHit | FetchOutcome::CacheHit => f.audit_stale,
                };
                CacheAudit {
                    url: f.url.to_string(),
                    decision,
                    etag: f.audit_etag.clone(),
                    epoch: f.audit_epoch,
                    served_stale,
                    body_digest: f.body_digest,
                }
            })
            .collect();
        // Stale-while-revalidate: the background revalidation's
        // outcome is the staleness oracle for the copy it refreshed —
        // a 304 proves the served bytes were current, a full transfer
        // proves they were stale.
        for &(bg, served) in &self.swr_pairs {
            if self.fetches[bg].completed.is_some() {
                audits[served].served_stale =
                    Some(self.fetches[bg].outcome == FetchOutcome::FullTransfer);
            }
        }
        audits
    }

    /// Emits the load's span tree: one `page_load` root, one `fetch`
    /// span per resource, and phase children (`queue`, `request`,
    /// `wait`, `download` for network fetches; `local` for cache, SW
    /// and predelivered hits). Origin/proxy spans recorded downstream
    /// already parent onto the fetch spans via the propagated context.
    fn emit_spans(&self, tracer: &Tracer, plt: SimTime) {
        let page = self
            .navigation_url
            .clone()
            .unwrap_or_else(|| "about:blank".to_owned());
        tracer.sink.record(Span {
            trace_id: tracer.trace,
            span_id: tracer.root,
            parent: None,
            name: "page_load",
            start_ms: self.abs_ms(SimTime::ZERO),
            end_ms: self.abs_ms(plt),
            attrs: vec![
                ("page", page),
                ("resources", self.fetches.len().to_string()),
            ],
        });
        for f in &self.fetches {
            let Some(span_id) = f.span else { continue };
            let completed = f.completed.unwrap_or(f.discovered);
            let started = f.started.unwrap_or(f.discovered);
            let role = if f.is_navigation {
                "navigation"
            } else if f.is_push {
                "push"
            } else if f.is_background {
                "background"
            } else {
                "subresource"
            };
            tracer.sink.record(Span {
                trace_id: tracer.trace,
                span_id,
                parent: Some(tracer.root),
                name: "fetch",
                start_ms: self.abs_ms(f.discovered),
                end_ms: self.abs_ms(completed),
                attrs: vec![
                    ("url", f.url.to_string()),
                    ("outcome", f.outcome.tag().trim().to_owned()),
                    ("role", role.to_owned()),
                    ("bytes_down", f.bytes_down.to_string()),
                    ("rtts", f.rtts.to_string()),
                ],
            });
            let child = |name: &'static str, from: SimTime, to: SimTime| {
                tracer.sink.record(Span {
                    trace_id: tracer.trace,
                    span_id: SpanId::next(),
                    parent: Some(span_id),
                    name,
                    start_ms: self.abs_ms(from),
                    end_ms: self.abs_ms(to),
                    attrs: Vec::new(),
                });
            };
            match (f.t_upload_done, f.t_response_start) {
                (Some(upload_done), Some(response_start)) => {
                    // Network exchange: connection wait + handshake,
                    // request serialization/upload, server round trip,
                    // body download.
                    if started > f.discovered {
                        child("queue", f.discovered, started);
                    }
                    child("request", started, upload_done);
                    child("wait", upload_done, response_start);
                    child("download", response_start, completed);
                }
                _ => {
                    // Local serving (SW hit, cache hit, predelivered
                    // push/bundle body): one span for the local
                    // overhead.
                    child("local", f.discovered, completed);
                }
            }
        }
    }
}
