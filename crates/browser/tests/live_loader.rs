//! Unit-level coverage for the live (wall-clock) page loader, over
//! plain in-process duplex pipes — no link emulation, just protocol
//! correctness and state persistence.

#![cfg(feature = "aio")]

use std::sync::Arc;

use cachecatalyst_browser::live::{ByteStream, Dialer, LiveBrowser, LiveMode};
use cachecatalyst_httpwire::Url;
use cachecatalyst_netsim::FetchOutcome;
use cachecatalyst_origin::{fixed_clock, OriginServer, TcpOrigin};
use cachecatalyst_webmodel::example_site;

fn instant_dialer(origin: Arc<OriginServer>, t_secs: i64) -> Dialer {
    Arc::new(move |_host| {
        let origin = Arc::clone(&origin);
        Box::pin(async move {
            let (client_end, server_end) = tokio::io::duplex(64 * 1024);
            let opts = TcpOrigin::builder()
                .server(origin)
                .clock(fixed_clock(t_secs));
            tokio::spawn(async move {
                let _ = opts.serve_stream(server_end).await;
            });
            Ok(Box::new(client_end) as Box<dyn ByteStream>)
        })
    })
}

fn base() -> Url {
    Url::parse("http://example.org/index.html").unwrap()
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn uncached_load_fetches_the_whole_tree() {
    let origin = Arc::new(OriginServer::new(
        example_site(),
        cachecatalyst_origin::HeaderMode::Baseline,
    ));
    let mut browser = LiveBrowser::new(instant_dialer(origin, 0), LiveMode::Uncached);
    let report = browser.load(&base()).await.unwrap();
    assert_eq!(report.trace.fetches.len(), 5, "{:#?}", report.trace);
    assert_eq!(report.network_requests, 5);
    assert!(report
        .trace
        .fetches
        .iter()
        .all(|f| f.outcome == FetchOutcome::FullTransfer));
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn baseline_live_browser_caches_across_loads() {
    let origin = Arc::new(OriginServer::new(
        example_site(),
        cachecatalyst_origin::HeaderMode::Baseline,
    ));
    let mut browser = LiveBrowser::new(instant_dialer(Arc::clone(&origin), 0), LiveMode::Baseline);
    browser.load(&base()).await.unwrap();

    // Revisit one minute later (server time unchanged ⇒ 304s for the
    // no-cache entries, fresh hits for the TTL'd ones).
    let mut browser = browser.with_dialer(instant_dialer(origin, 60));
    browser.now_secs = 60;
    let warm = browser.load(&base()).await.unwrap();
    assert!(warm.cache_hits > 0, "{warm:?}");
    assert!(warm.network_requests < 5);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn catalyst_live_browser_reaches_sw_hits() {
    let origin = Arc::new(OriginServer::new(
        example_site(),
        cachecatalyst_origin::HeaderMode::Catalyst,
    ));
    let mut browser = LiveBrowser::new(instant_dialer(Arc::clone(&origin), 0), LiveMode::Catalyst);
    browser.load(&base()).await.unwrap();
    let mut browser = browser.with_dialer(instant_dialer(origin, 60));
    browser.now_secs = 60;
    let warm = browser.load(&base()).await.unwrap();
    assert!(warm.sw_hits >= 2, "{warm:?}");
    // Unchanged at +60 s: the navigation and the unmapped JS chain are
    // the only network round trips, all 304s.
    assert!(warm
        .trace
        .fetches
        .iter()
        .filter(|f| f.outcome.used_network())
        .all(|f| f.outcome == FetchOutcome::NotModified));
}
