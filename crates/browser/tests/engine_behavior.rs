//! Behavioural tests for the page-load engine: connection-pool
//! limits, predelivery (push/bundle) semantics, proxy delay charging,
//! and the FCP metric.

use std::sync::Arc;
use std::time::Duration;

use cachecatalyst_browser::engine::ext;
use cachecatalyst_browser::{Browser, EngineConfig, SingleOrigin, Upstream};
use cachecatalyst_httpwire::{Request, Response, Url};
use cachecatalyst_netsim::{FetchOutcome, NetworkConditions};
use cachecatalyst_origin::{HeaderMode, OriginServer};
use cachecatalyst_webmodel::{example_site, Site, SiteSpec};

fn cond() -> NetworkConditions {
    NetworkConditions::five_g_median()
}

fn flat_site(n_images: usize) -> (Site, Url) {
    // A page with n images linked directly from the HTML (no JS).
    let site = Site::generate(SiteSpec {
        host: "flat.example".into(),
        seed: 77,
        n_resources: n_images,
        js_discovered_fraction: 0.0,
        ..Default::default()
    });
    let url = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    (site, url)
}

#[test]
fn connection_pool_is_limited() {
    // With 24 subresources and 6 connections, downloads proceed in
    // waves; with 24 connections they all start immediately after
    // parse. The pooled load must be slower.
    let (site, url) = flat_site(24);
    let origin = Arc::new(OriginServer::new(site, HeaderMode::NoStore));
    let up = SingleOrigin(origin);

    let mut narrow = Browser::new(EngineConfig {
        max_connections_per_origin: 6,
        use_http_cache: false,
        use_service_worker: false,
        ..Default::default()
    });
    let mut wide = Browser::new(EngineConfig {
        max_connections_per_origin: 24,
        use_http_cache: false,
        use_service_worker: false,
        ..Default::default()
    });
    let slow = narrow.load(&up, cond(), &url, 0);
    let fast = wide.load(&up, cond(), &url, 0);
    assert!(
        fast.plt < slow.plt,
        "6 conns {:?} vs 24 conns {:?}",
        slow.plt,
        fast.plt
    );
}

#[test]
fn every_fetch_waits_for_a_connection() {
    // All fetches must have started at-or-after discovery, and no more
    // than 6 transfers may overlap at any instant.
    let (site, url) = flat_site(30);
    let origin = Arc::new(OriginServer::new(site, HeaderMode::NoStore));
    let up = SingleOrigin(origin);
    let report = Browser::uncached().load(&up, cond(), &url, 0);
    for f in &report.trace.fetches {
        assert!(f.started >= f.discovered, "{}", f.url);
        assert!(f.completed >= f.started, "{}", f.url);
    }
    // Overlap check at each fetch start.
    let fetches = &report.trace.fetches;
    for probe in fetches {
        let overlapping = fetches
            .iter()
            .filter(|f| f.started <= probe.started && probe.started < f.completed)
            .count();
        assert!(overlapping <= 6, "{} transfers overlap", overlapping);
    }
}

/// An upstream that delays one response via the proxy-delay header.
struct DelayedUpstream(Arc<OriginServer>, u64);

impl Upstream for DelayedUpstream {
    fn handle(&self, _host: &str, req: &Request, t: i64) -> Response {
        let mut resp = self.0.handle(req, t);
        if req.target.path().ends_with(".html") {
            resp.headers
                .insert(ext::X_SERVER_DELAY_MS, &self.1.to_string());
        }
        resp
    }
}

#[test]
fn server_delay_header_is_charged() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();

    let plain = Browser::uncached().load(&SingleOrigin(Arc::clone(&origin)), cond(), &base, 0);
    let delayed = Browser::uncached().load(&DelayedUpstream(origin, 250), cond(), &base, 0);
    let diff = delayed.plt_ms() - plain.plt_ms();
    assert!(
        (200.0..300.0).contains(&diff),
        "expected ~250 ms extra, got {diff:.1}"
    );
}

/// An upstream that pushes one resource after the navigation.
struct PushOne(Arc<OriginServer>, &'static str);

impl Upstream for PushOne {
    fn handle(&self, _host: &str, req: &Request, t: i64) -> Response {
        let mut resp = self.0.handle(req, t);
        if req.target.path().ends_with(".html") && !req.headers.contains(ext::X_INTERNAL) {
            resp.headers.insert(ext::X_PUSHED, self.1);
        }
        resp
    }
}

#[test]
fn pushed_resource_satisfies_later_request() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();
    let up = PushOne(origin, "/a.css");
    let report = Browser::uncached().load(&up, cond(), &base, 0);

    let a = report
        .trace
        .fetches
        .iter()
        .filter(|f| f.url.ends_with("/a.css"))
        .collect::<Vec<_>>();
    // One push row + one requester row served from the push.
    assert_eq!(a.len(), 2, "{:#?}", report.trace);
    assert!(a.iter().all(|f| f.outcome == FetchOutcome::Pushed));
    assert_eq!(report.pushed, 1);
    assert_eq!(report.pushed_unused, 0);
    // Exactly one of the rows carries the transfer bytes.
    assert_eq!(
        a.iter().filter(|f| f.bytes_down > 0).count(),
        1,
        "push bytes counted once"
    );
}

#[test]
fn unused_push_does_not_gate_onload() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();
    // Push a resource the page never references beyond the push itself
    // — use d.jpg which is only discovered via the JS chain; push a
    // *bogus-but-existing* resource that is never requested: nothing on
    // the page references /cc-sw.js in baseline mode.
    let up = PushOne(origin, "/cc-sw.js");
    let report = Browser::uncached().load(&up, cond(), &base, 0);
    assert_eq!(report.pushed, 1);
    assert_eq!(report.pushed_unused, 1);
    assert!(report.pushed_unused_bytes > 0);
    // The wasted push completes after PLT or before, but PLT only
    // tracks requested resources.
    let plain_origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let plain = Browser::uncached().load(&SingleOrigin(plain_origin), cond(), &base, 0);
    // The push shares bandwidth, so PLT may shift slightly, but must
    // not jump by the full push transfer.
    let ratio = report.plt_ms() / plain.plt_ms();
    assert!(ratio < 1.15, "unused push inflated PLT by {ratio}");
}

#[test]
fn fcp_precedes_plt_and_tracks_render_blocking() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();
    let report = Browser::baseline().load(&SingleOrigin(origin), cond(), &base, 0);
    assert!(report.fcp <= report.plt);
    // FCP is gated by a.css/b.js (render-blocking), not by the
    // JS-discovered d.jpg chain.
    let b_js = report
        .trace
        .fetches
        .iter()
        .find(|f| f.url.ends_with("/b.js"))
        .unwrap();
    let d_jpg = report
        .trace
        .fetches
        .iter()
        .find(|f| f.url.ends_with("/d.jpg"))
        .unwrap();
    assert!(report.fcp >= b_js.completed);
    assert!(report.fcp < d_jpg.completed);
}

#[test]
fn rdr_bundle_header_makes_resources_instant() {
    struct Bundler(Arc<OriginServer>);
    impl Upstream for Bundler {
        fn handle(&self, _host: &str, req: &Request, t: i64) -> Response {
            let mut resp = self.0.handle(req, t);
            if req.target.path().ends_with(".html") && !req.headers.contains(ext::X_INTERNAL) {
                resp.headers.insert(ext::X_RDR_BUNDLE, "/a.css,/b.js");
            }
            resp
        }
    }
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();
    let report = Browser::uncached().load(&Bundler(origin), cond(), &base, 0);
    for path in ["/a.css", "/b.js"] {
        let f = report
            .trace
            .fetches
            .iter()
            .find(|f| f.url.ends_with(path))
            .unwrap();
        assert_eq!(f.outcome, FetchOutcome::Pushed, "{path}");
        assert_eq!(f.bytes_down, 0, "bundled bytes counted in the bundle");
        // Served within a millisecond of discovery.
        assert!(f.completed.since(f.discovered) < Duration::from_millis(2));
    }
}

#[test]
fn http2_multiplexing_beats_pooled_h1_on_cold_loads() {
    let (site, url) = flat_site(30);
    let origin = Arc::new(OriginServer::new(site, HeaderMode::NoStore));
    let up = SingleOrigin(origin);
    let mut h1 = Browser::new(EngineConfig {
        use_http_cache: false,
        ..Default::default()
    });
    let mut h2 = Browser::new(EngineConfig {
        http2: true,
        use_http_cache: false,
        ..Default::default()
    });
    let h1_report = h1.load(&up, cond(), &url, 0);
    let h2_report = h2.load(&up, cond(), &url, 0);
    assert!(
        h2_report.plt < h1_report.plt,
        "h2 {:?} vs h1 {:?}",
        h2_report.plt,
        h1_report.plt
    );
    // h2 pays exactly one handshake; h1 up to 6.
    assert!(h2_report
        .trace
        .fetches
        .iter()
        .all(|f| f.started >= f.discovered));
}

#[test]
fn http2_results_are_deterministic_and_complete() {
    let (site, url) = flat_site(20);
    let origin = Arc::new(OriginServer::new(site, HeaderMode::Baseline));
    let up = SingleOrigin(origin);
    let run = || {
        let mut b = Browser::new(EngineConfig {
            http2: true,
            ..Default::default()
        });
        let r = b.load(&up, cond(), &url, 0);
        (r.plt.as_nanos(), r.trace.fetches.len())
    };
    let a = run();
    assert_eq!(a, run());
    assert_eq!(a.1, 21, "all resources fetched under h2");
}

#[test]
fn dns_lookup_costs_one_rtt_per_host_when_modeled() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();
    let plain = Browser::uncached().load(&SingleOrigin(Arc::clone(&origin)), cond(), &base, 0);
    let mut with_dns = Browser::new(EngineConfig {
        model_dns: true,
        use_http_cache: false,
        use_service_worker: false,
        ..Default::default()
    });
    let dns_report = with_dns.load(&SingleOrigin(origin), cond(), &base, 0);
    let diff = dns_report.plt_ms() - plain.plt_ms();
    // One host → exactly one extra RTT (40 ms) on the critical path.
    assert!(
        (35.0..=45.0).contains(&diff),
        "expected ~40 ms DNS cost, got {diff:.1}"
    );
}

#[test]
fn tls_adds_one_rtt_per_connection() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();
    let plain = Browser::uncached().load(&SingleOrigin(Arc::clone(&origin)), cond(), &base, 0);
    let mut tls = Browser::new(EngineConfig {
        tls: true,
        use_http_cache: false,
        use_service_worker: false,
        ..Default::default()
    });
    let tls_report = tls.load(&SingleOrigin(origin), cond(), &base, 0);
    // Two handshakes sit on the critical path (the navigation's
    // connection, then the parallel connection b.js opens while a.css
    // reuses the first) → exactly +2 RTT (80 ms).
    let diff = tls_report.plt_ms() - plain.plt_ms();
    assert!((75.0..=85.0).contains(&diff), "TLS cost {diff:.1} ms");
}

#[test]
fn loss_is_deterministic_and_slows_loads() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let base = Url::parse("http://example.org/index.html").unwrap();
    let run = |rate: f64, seed: u64| {
        let mut b = Browser::new(EngineConfig {
            loss_rate: rate,
            loss_seed: seed,
            use_http_cache: false,
            use_service_worker: false,
            ..Default::default()
        });
        b.load(&SingleOrigin(Arc::clone(&origin)), cond(), &base, 0)
            .plt
    };
    let clean = run(0.0, 1);
    let lossy = run(0.5, 1);
    assert!(lossy > clean, "50% loss must slow the load");
    assert_eq!(run(0.5, 1), lossy, "same seed ⇒ same losses");
    // Different seeds explore different loss patterns (almost surely).
    let other = run(0.5, 2);
    assert!(other != lossy || other > clean);
}

/// Adds `stale-while-revalidate` to one resource's responses.
struct SwrOne(Arc<OriginServer>, &'static str, u64);

impl Upstream for SwrOne {
    fn handle(&self, _host: &str, req: &Request, t: i64) -> Response {
        let mut resp = self.0.handle(req, t);
        if req.target.path() == self.1 {
            let cc = format!(
                "{}, stale-while-revalidate={}",
                resp.headers.get("cache-control").unwrap_or(""),
                self.2
            );
            resp.headers.insert("cache-control", &cc);
        }
        resp
    }
}

#[test]
fn swr_serves_stale_and_revalidates_in_background() {
    // d.jpg: max-age 1h; revisit at +2h with a 1-day SWR window.
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let up = SwrOne(origin, "/d.jpg", 86_400);
    let base = Url::parse("http://example.org/index.html").unwrap();
    let mut browser = Browser::baseline();
    browser.load(&up, cond(), &base, 0);
    let warm = browser.load(&up, cond(), &base, 7200);

    let d = warm
        .trace
        .fetches
        .iter()
        .filter(|f| f.url.ends_with("/d.jpg"))
        .collect::<Vec<_>>();
    // One instant (stale) serve + one background revalidation row.
    assert_eq!(d.len(), 2, "{:#?}", warm.trace);
    assert!(d.iter().any(|f| f.outcome == FetchOutcome::CacheHit));
    assert_eq!(warm.swr_served, 1);
    // d.jpg changed at +2h, so the background refresh was a full 200
    // that updated the cache: a third visit sees the new version fresh.
    let third = browser.load(&up, cond(), &base, 7300);
    let d3 = third
        .trace
        .fetches
        .iter()
        .find(|f| f.url.ends_with("/d.jpg"))
        .unwrap();
    assert_eq!(d3.outcome, FetchOutcome::CacheHit);

    // Disabling SWR restores the blocking revalidation.
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let up = SwrOne(origin, "/d.jpg", 86_400);
    let mut strict = Browser::new(EngineConfig {
        enable_swr: false,
        ..Default::default()
    });
    strict.load(&up, cond(), &base, 0);
    let warm = strict.load(&up, cond(), &base, 7200);
    assert_eq!(warm.swr_served, 0);
    let d = warm
        .trace
        .fetches
        .iter()
        .find(|f| f.url.ends_with("/d.jpg"))
        .unwrap();
    assert_eq!(d.outcome, FetchOutcome::FullTransfer);
}
