//! Fault-injection behaviour of the page-load engine: seeded fault
//! plans, bounded retry with backoff, degraded-path audits, and the
//! serve-correct-bytes property against an un-faulted reference load.

use std::collections::BTreeMap;
use std::sync::Arc;

use cachecatalyst_browser::{Browser, LoadReport, SingleOrigin};
use cachecatalyst_httpwire::Url;
use cachecatalyst_netsim::{FaultPlan, NetworkConditions};
use cachecatalyst_origin::{HeaderMode, OriginServer};
use cachecatalyst_telemetry::{CacheDecision, Event, MemoryRecorder};
use cachecatalyst_webmodel::example_site;

fn cond() -> NetworkConditions {
    NetworkConditions::five_g_median()
}

fn upstream(mode: HeaderMode) -> SingleOrigin {
    SingleOrigin(Arc::new(OriginServer::new(example_site(), mode)))
}

fn base() -> Url {
    Url::parse("http://example.org/index.html").unwrap()
}

/// Delivered-body digests keyed by URL. A URL that appears twice
/// (push row + requester row, or SWR background refresh) keeps every
/// distinct digest it delivered.
fn digests(report: &LoadReport) -> BTreeMap<String, Vec<u64>> {
    let mut map: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    for audit in &report.audits {
        if let Some(d) = audit.body_digest {
            let entry = map.entry(audit.url.clone()).or_default();
            if !entry.contains(&d) {
                entry.push(d);
            }
        }
    }
    map
}

#[test]
fn rate_zero_plan_is_a_no_op() {
    let up = upstream(HeaderMode::Catalyst);
    let plain = Browser::catalyst().load(&up, cond(), &base(), 0);
    let mut faulted = Browser::catalyst();
    faulted.config.fault_plan = Some(FaultPlan::new(42).with_fault_rate(0.0));
    let report = faulted.load(&up, cond(), &base(), 0);
    assert_eq!(report.plt, plain.plt);
    assert_eq!(report.trace.fetches.len(), plain.trace.fetches.len());
    assert_eq!(report.faults_injected, 0);
    assert_eq!(report.retries, 0);
    assert_eq!(report.degraded, 0);
}

#[test]
fn faulted_cold_loads_deliver_reference_bytes() {
    // Across many seeds, every page load under faults completes and
    // every delivered body digest matches the un-faulted reference.
    let up = upstream(HeaderMode::Catalyst);
    let reference = Browser::catalyst().load(&up, cond(), &base(), 0);
    let reference_digests = digests(&reference);
    let mut total_faults = 0;
    for seed in 1..=30u64 {
        let mut b = Browser::catalyst();
        b.config.fault_plan = Some(FaultPlan::new(seed).with_fault_rate(0.4));
        let report = b.load(&up, cond(), &base(), 0);
        total_faults += report.faults_injected;
        assert_eq!(
            report.audits.len(),
            report.trace.fetches.len(),
            "seed {seed}: audit trail complete"
        );
        for (url, ds) in digests(&report) {
            let expected = reference_digests
                .get(&url)
                .unwrap_or_else(|| panic!("seed {seed}: {url} not in reference"));
            for d in ds {
                assert!(
                    expected.contains(&d),
                    "seed {seed}: {url} delivered digest {d:016x}, want one of {expected:x?}"
                );
            }
        }
        for f in &report.trace.fetches {
            assert!(f.completed >= f.started, "seed {seed}: {}", f.url);
        }
    }
    assert!(total_faults > 0, "0.4 fault rate over 30 seeds must fire");
}

#[test]
fn warm_catalyst_load_survives_config_tampering() {
    // Warm a catalyst browser un-faulted, then revisit under heavy
    // faults: even when the config map is corrupted in transit the
    // page must complete with the same bytes the clean revisit serves.
    let up = upstream(HeaderMode::Catalyst);
    let mut clean = Browser::catalyst();
    clean.load(&up, cond(), &base(), 0);
    let faulted = clean.clone();
    let reference = clean.load(&up, cond(), &base(), 100);
    let reference_digests = digests(&reference);

    let mut degraded_seen = false;
    for seed in 1..=40u64 {
        let mut b = faulted.clone();
        b.config.fault_plan = Some(FaultPlan::new(seed).with_fault_rate(0.6));
        let report = b.load(&up, cond(), &base(), 100);
        degraded_seen |= report.degraded > 0;
        for (url, ds) in digests(&report) {
            let expected = reference_digests
                .get(&url)
                .unwrap_or_else(|| panic!("seed {seed}: {url} not in reference"));
            for d in ds {
                assert!(
                    expected.contains(&d),
                    "seed {seed}: {url} delivered digest {d:016x}, want one of {expected:x?}"
                );
            }
        }
    }
    assert!(degraded_seen, "some seed must force a degraded fallback");
}

#[test]
fn retries_surface_in_report_audits_and_events() {
    let up = upstream(HeaderMode::Catalyst);
    let mut hit = None;
    for seed in 1..=50u64 {
        let recorder = Arc::new(MemoryRecorder::default());
        let mut b = Browser::catalyst().with_recorder(recorder.clone());
        b.config.fault_plan = Some(FaultPlan::new(seed).with_fault_rate(0.5));
        let report = b.load(&up, cond(), &base(), 0);
        let degraded_audits = report
            .audits
            .iter()
            .filter(|a| a.decision == CacheDecision::Degraded)
            .count();
        assert_eq!(
            degraded_audits, report.degraded,
            "seed {seed}: degraded count and audit decisions agree"
        );
        let summaries: Vec<Event> = recorder
            .snapshot()
            .into_iter()
            .filter(|e| matches!(e, Event::FaultSummary { .. }))
            .collect();
        if report.faults_injected > 0 || report.retries > 0 || report.degraded > 0 {
            assert_eq!(summaries.len(), 1, "seed {seed}");
            if let Event::FaultSummary {
                faults_injected,
                retries,
                degraded,
                ..
            } = summaries[0]
            {
                assert_eq!(faults_injected, report.faults_injected);
                assert_eq!(retries, report.retries);
                assert_eq!(degraded as usize, report.degraded);
            }
        } else {
            assert!(summaries.is_empty(), "seed {seed}: no faults, no summary");
        }
        if report.retries > 0 {
            hit = Some(seed);
        }
    }
    assert!(hit.is_some(), "some seed in 1..=50 must force a retry");
}

#[test]
fn same_seed_replays_identically_and_seeds_diverge() {
    let up = upstream(HeaderMode::Catalyst);
    let run = |seed: u64| {
        let mut b = Browser::catalyst();
        b.config.fault_plan = Some(FaultPlan::new(seed).with_fault_rate(0.5));
        let report = b.load(&up, cond(), &base(), 0);
        let rows: Vec<(String, u64, u64, u32, u64)> = report
            .trace
            .fetches
            .iter()
            .map(|f| {
                (
                    f.url.clone(),
                    f.bytes_down,
                    f.bytes_up,
                    f.rtts,
                    f.completed.as_nanos(),
                )
            })
            .collect();
        (report.plt, report.faults_injected, report.retries, rows)
    };
    let a = run(7);
    assert_eq!(a, run(7), "same seed, same plan ⇒ identical replay");
    // Different seeds explore different schedules: over a handful of
    // seeds at 0.5 rate, at least one must differ from seed 7.
    let diverged = (8..=12u64).any(|s| run(s) != a);
    assert!(diverged, "independent seeds must diverge");
}

#[test]
fn baseline_browser_also_survives_faults() {
    let up = upstream(HeaderMode::Baseline);
    let mut clean = Browser::baseline();
    clean.load(&up, cond(), &base(), 0);
    let warm_clean = clean.clone();
    let reference = clean.load(&up, cond(), &base(), 100);
    let reference_digests = digests(&reference);
    for seed in 1..=20u64 {
        let mut b = warm_clean.clone();
        b.config.fault_plan = Some(FaultPlan::new(seed).with_fault_rate(0.5));
        let report = b.load(&up, cond(), &base(), 100);
        for (url, ds) in digests(&report) {
            let expected = reference_digests
                .get(&url)
                .unwrap_or_else(|| panic!("seed {seed}: {url} not in reference"));
            for d in ds {
                assert!(
                    expected.contains(&d),
                    "seed {seed}: {url} delivered digest {d:016x}, want one of {expected:x?}"
                );
            }
        }
    }
}
