//! Cache effectiveness counters.

/// Counters accumulated by an [`crate::HttpCache`] across lookups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups served directly from a fresh entry (zero network).
    pub fresh_hits: u64,
    /// Lookups that found a stale entry (revalidation required).
    pub stale_hits: u64,
    /// Responses stored.
    pub stores: u64,
    /// Entries evicted by the size budget.
    pub evictions: u64,
    /// Stored entries refreshed by a 304.
    pub revalidation_refreshes: u64,
}

impl CacheMetrics {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.misses + self.fresh_hits + self.stale_hits
    }

    /// Fraction of lookups served without touching the network.
    pub fn fresh_hit_ratio(&self) -> f64 {
        match self.lookups() {
            0 => 0.0,
            n => self.fresh_hits as f64 / n as f64,
        }
    }

    /// Difference between two snapshots (for per-page-load deltas).
    pub fn delta_since(&self, earlier: &CacheMetrics) -> CacheMetrics {
        CacheMetrics {
            misses: self.misses - earlier.misses,
            fresh_hits: self.fresh_hits - earlier.fresh_hits,
            stale_hits: self.stale_hits - earlier.stale_hits,
            stores: self.stores - earlier.stores,
            evictions: self.evictions - earlier.evictions,
            revalidation_refreshes: self.revalidation_refreshes - earlier.revalidation_refreshes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let m = CacheMetrics {
            misses: 2,
            fresh_hits: 6,
            stale_hits: 2,
            ..Default::default()
        };
        assert_eq!(m.lookups(), 10);
        assert!((m.fresh_hit_ratio() - 0.6).abs() < 1e-12);
        assert_eq!(CacheMetrics::default().fresh_hit_ratio(), 0.0);
    }

    #[test]
    fn delta() {
        let a = CacheMetrics {
            misses: 1,
            fresh_hits: 2,
            ..Default::default()
        };
        let b = CacheMetrics {
            misses: 4,
            fresh_hits: 7,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.misses, 3);
        assert_eq!(d.fresh_hits, 5);
    }
}
