//! The browser's HTTP cache.

use std::collections::HashMap;

use cachecatalyst_httpwire::{HeaderName, Method, Request, Response, StatusCode};

use crate::freshness::{freshness_lifetime, is_fresh, swr_usable};
use crate::metrics::CacheMetrics;

/// One stored response.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    pub response: Response,
    /// Virtual seconds when the request producing this entry was sent.
    pub request_time: i64,
    /// Virtual seconds when the response arrived.
    pub response_time: i64,
    /// Last use, for LRU eviction.
    pub last_used: i64,
    /// The response's `Vary` selection: for each varied request header
    /// (lowercased), the value the original request carried
    /// (RFC 9111 §4.1). `("*", _)` never matches.
    pub vary: Vec<(String, Option<String>)>,
    /// Monotonic use counter to break LRU ties deterministically.
    use_seq: u64,
}

impl CacheEntry {
    /// Whether a new request selects this stored variant.
    pub fn vary_matches(&self, req: &Request) -> bool {
        self.vary
            .iter()
            .all(|(name, stored)| name != "*" && req.headers.get_combined(name) == *stored)
    }
}

impl CacheEntry {
    /// Approximate memory footprint used for the size budget.
    fn weight(&self) -> u64 {
        self.response.body.len() as u64 + 512
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// A fresh stored response: serve with zero network use.
    Fresh(Response),
    /// A stale stored response that can be revalidated; `etag` /
    /// `last_modified` say which validators to attach. When
    /// `swr_usable` is set, RFC 5861 permits serving this response
    /// immediately while revalidating in the background.
    Stale {
        response: Response,
        etag: Option<String>,
        last_modified: Option<String>,
        swr_usable: bool,
    },
    /// Nothing stored (or not reusable).
    Miss,
}

/// A private (browser) HTTP cache with LRU eviction, keyed by absolute
/// URL.
///
/// ```
/// use cachecatalyst_httpcache::{HttpCache, Lookup};
/// use cachecatalyst_httpwire::{HttpDate, Request, Response};
///
/// let mut cache = HttpCache::unbounded();
/// let req = Request::get("/logo.png");
/// let resp = Response::ok("png-bytes")
///     .with_header("cache-control", "max-age=60")
///     .with_header("date", &HttpDate(0).to_imf_fixdate());
/// cache.store("http://s/logo.png", &req, &resp, 0, 0);
/// assert!(matches!(cache.lookup("http://s/logo.png", 30), Lookup::Fresh(_)));
/// assert!(matches!(cache.lookup("http://s/logo.png", 90), Lookup::Stale { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct HttpCache {
    capacity_bytes: u64,
    used_bytes: u64,
    entries: HashMap<String, CacheEntry>,
    seq: u64,
    pub metrics: CacheMetrics,
}

impl HttpCache {
    /// A cache with the given capacity (bytes of stored bodies).
    pub fn new(capacity_bytes: u64) -> HttpCache {
        HttpCache {
            capacity_bytes,
            used_bytes: 0,
            entries: HashMap::new(),
            seq: 0,
            metrics: CacheMetrics::default(),
        }
    }

    /// A cache big enough that eviction never triggers in the
    /// evaluation (browsers give tens-to-hundreds of MB per origin).
    pub fn unbounded() -> HttpCache {
        HttpCache::new(u64::MAX)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Whether any entry is stored for `url`.
    pub fn contains(&self, url: &str) -> bool {
        self.entries.contains_key(url)
    }

    /// Raw access to a stored entry (diagnostics / service worker).
    pub fn peek(&self, url: &str) -> Option<&CacheEntry> {
        self.entries.get(url)
    }

    /// Looks up `url` at virtual time `now`, ignoring `Vary` (i.e. as
    /// if the request carried the same selecting headers as the one
    /// that stored the entry). Prefer [`HttpCache::lookup_for`].
    pub fn lookup(&mut self, url: &str, now: i64) -> Lookup {
        self.lookup_inner(url, None, now)
    }

    /// Looks up `url` for a specific request, honoring the stored
    /// response's `Vary` selection (RFC 9111 §4.1): a mismatching
    /// variant is a miss (browsers keep one variant per URL).
    pub fn lookup_for(&mut self, url: &str, req: &Request, now: i64) -> Lookup {
        self.lookup_inner(url, Some(req), now)
    }

    fn lookup_inner(&mut self, url: &str, req: Option<&Request>, now: i64) -> Lookup {
        self.seq += 1;
        let seq = self.seq;
        let Some(entry) = self.entries.get_mut(url) else {
            self.metrics.misses += 1;
            return Lookup::Miss;
        };
        if let Some(req) = req {
            if !entry.vary_matches(req) {
                self.metrics.misses += 1;
                return Lookup::Miss;
            }
        }
        entry.last_used = now;
        entry.use_seq = seq;
        if is_fresh(
            &entry.response,
            entry.request_time,
            entry.response_time,
            now,
        ) {
            self.metrics.fresh_hits += 1;
            Lookup::Fresh(entry.response.clone())
        } else {
            self.metrics.stale_hits += 1;
            let etag = entry
                .response
                .headers
                .get(HeaderName::ETAG)
                .map(str::to_owned);
            let last_modified = entry
                .response
                .headers
                .get(HeaderName::LAST_MODIFIED)
                .map(str::to_owned);
            let swr = swr_usable(
                &entry.response,
                entry.request_time,
                entry.response_time,
                now,
            );
            Lookup::Stale {
                response: entry.response.clone(),
                etag,
                last_modified,
                swr_usable: swr,
            }
        }
    }

    /// Whether `resp` to `req` may be stored (RFC 9111 §3, private
    /// cache rules).
    pub fn is_storable(req: &Request, resp: &Response) -> bool {
        if req.method != Method::Get {
            return false;
        }
        if resp.cache_control().no_store || req.cache_control().no_store {
            return false;
        }
        if !resp.status.is_success() && !resp.status.is_redirection() {
            return false;
        }
        if resp.status == StatusCode::NOT_MODIFIED {
            return false; // handled by update_with_304
        }
        // Must have *some* way to be reused: explicit freshness,
        // a validator, or heuristic freshness.
        let cc = resp.cache_control();
        cc.max_age.is_some()
            || cc.no_cache
            || resp.headers.contains(HeaderName::EXPIRES)
            || resp.headers.contains(HeaderName::ETAG)
            || resp.headers.contains(HeaderName::LAST_MODIFIED)
            || freshness_lifetime(resp) > std::time::Duration::ZERO
    }

    /// Stores a response if permitted. Returns whether it was stored.
    pub fn store(
        &mut self,
        url: &str,
        req: &Request,
        resp: &Response,
        request_time: i64,
        response_time: i64,
    ) -> bool {
        if !Self::is_storable(req, resp) {
            return false;
        }
        // Capture the Vary selection (RFC 9111 §4.1).
        let vary: Vec<(String, Option<String>)> = resp
            .headers
            .get_combined(HeaderName::VARY)
            .map(|v| {
                v.split(',')
                    .map(|name| {
                        let name = name.trim().to_ascii_lowercase();
                        let value = req.headers.get_combined(&name);
                        (name, value)
                    })
                    .collect()
            })
            .unwrap_or_default();
        self.seq += 1;
        let entry = CacheEntry {
            response: resp.clone(),
            request_time,
            response_time,
            last_used: response_time,
            vary,
            use_seq: self.seq,
        };
        let w = entry.weight();
        if let Some(old) = self.entries.insert(url.to_owned(), entry) {
            self.used_bytes -= old.weight();
        }
        self.used_bytes += w;
        self.metrics.stores += 1;
        self.evict_if_needed();
        true
    }

    /// Applies a `304 Not Modified` to the stored entry for `url`
    /// (RFC 9111 §4.3.4): updates stored headers from the 304 and
    /// refreshes the entry's timestamps. Returns the refreshed
    /// response for serving, or `None` if nothing is stored.
    pub fn update_with_304(
        &mut self,
        url: &str,
        resp_304: &Response,
        request_time: i64,
        response_time: i64,
    ) -> Option<Response> {
        let entry = self.entries.get_mut(url)?;
        for (name, value) in resp_304.headers.iter() {
            // Update all metadata except framing headers.
            let n = name.as_str();
            if n == HeaderName::CONTENT_LENGTH || n == HeaderName::TRANSFER_ENCODING {
                continue;
            }
            entry.response.headers.insert(n, value.as_str());
        }
        entry.request_time = request_time;
        entry.response_time = response_time;
        entry.last_used = response_time;
        self.metrics.revalidation_refreshes += 1;
        Some(entry.response.clone())
    }

    /// Removes an entry.
    pub fn invalidate(&mut self, url: &str) {
        if let Some(old) = self.entries.remove(url) {
            self.used_bytes -= old.weight();
        }
    }

    /// Clears the whole cache (a "cold cache" reset).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.used_bytes = 0;
    }

    fn evict_if_needed(&mut self) {
        while self.used_bytes > self.capacity_bytes && self.entries.len() > 1 {
            // Evict the least-recently-used entry (ties by use_seq).
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| (e.last_used, e.use_seq))
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            if let Some(old) = self.entries.remove(&victim) {
                self.used_bytes -= old.weight();
                self.metrics.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachecatalyst_httpwire::HttpDate;

    fn cacheable_response(max_age: u64, etag: &str) -> Response {
        Response::ok("0123456789")
            .with_header("cache-control", &format!("max-age={max_age}"))
            .with_header("etag", &format!("\"{etag}\""))
            .with_header("date", &HttpDate(0).to_imf_fixdate())
    }

    #[test]
    fn miss_then_fresh_then_stale() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        assert!(matches!(cache.lookup("u", 0), Lookup::Miss));

        let resp = cacheable_response(100, "v1");
        assert!(cache.store("u", &req, &resp, 0, 0));

        assert!(matches!(cache.lookup("u", 50), Lookup::Fresh(_)));
        match cache.lookup("u", 150) {
            Lookup::Stale { etag, .. } => assert_eq!(etag.as_deref(), Some("\"v1\"")),
            other => panic!("expected stale, got {other:?}"),
        }
        assert_eq!(cache.metrics.misses, 1);
        assert_eq!(cache.metrics.fresh_hits, 1);
        assert_eq!(cache.metrics.stale_hits, 1);
    }

    #[test]
    fn no_store_is_not_stored() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        let resp = Response::ok("x").with_header("cache-control", "no-store");
        assert!(!cache.store("u", &req, &resp, 0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn no_cache_is_stored_but_always_stale() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        let resp = Response::ok("x")
            .with_header("cache-control", "no-cache")
            .with_header("etag", "\"e\"");
        assert!(cache.store("u", &req, &resp, 0, 0));
        assert!(matches!(cache.lookup("u", 0), Lookup::Stale { .. }));
    }

    #[test]
    fn non_get_not_stored() {
        let mut cache = HttpCache::unbounded();
        let mut req = Request::get("/r");
        req.method = Method::Post;
        let resp = cacheable_response(100, "v");
        assert!(!cache.store("u", &req, &resp, 0, 0));
    }

    #[test]
    fn response_without_any_caching_info_not_stored() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        let resp = Response::ok("x");
        assert!(!cache.store("u", &req, &resp, 0, 0));
    }

    #[test]
    fn error_responses_not_stored() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        let mut resp = cacheable_response(100, "v");
        resp.status = StatusCode::INTERNAL_SERVER_ERROR;
        assert!(!cache.store("u", &req, &resp, 0, 0));
    }

    #[test]
    fn revalidation_freshens_entry() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        cache.store("u", &req, &cacheable_response(100, "v1"), 0, 0);

        // At t=150 the entry is stale. The origin said 304 with a new
        // Date; the entry becomes fresh for another 100 s.
        let resp304 =
            Response::not_modified(None).with_header("date", &HttpDate(150).to_imf_fixdate());
        let refreshed = cache.update_with_304("u", &resp304, 150, 150).unwrap();
        assert_eq!(&refreshed.body[..], b"0123456789");
        assert!(matches!(cache.lookup("u", 200), Lookup::Fresh(_)));
        assert!(matches!(cache.lookup("u", 251), Lookup::Stale { .. }));
    }

    #[test]
    fn update_304_keeps_body_and_updates_headers() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        cache.store("u", &req, &cacheable_response(100, "v1"), 0, 0);
        let resp304 = Response::not_modified(Some(&"\"v1\"".parse().unwrap()))
            .with_header("cache-control", "max-age=500");
        let refreshed = cache.update_with_304("u", &resp304, 150, 150).unwrap();
        assert_eq!(refreshed.headers.get("cache-control"), Some("max-age=500"));
        assert_eq!(&refreshed.body[..], b"0123456789");
    }

    #[test]
    fn lru_eviction() {
        // Each entry weighs body(10) + 512 = 522; capacity fits 2.
        let mut cache = HttpCache::new(1100);
        let req = Request::get("/r");
        cache.store("a", &req, &cacheable_response(100, "a"), 0, 0);
        cache.store("b", &req, &cacheable_response(100, "b"), 1, 1);
        // Touch "a" so "b" is the LRU victim.
        let _ = cache.lookup("a", 2);
        cache.store("c", &req, &cacheable_response(100, "c"), 3, 3);
        assert!(cache.contains("a"));
        assert!(!cache.contains("b"), "LRU entry should be evicted");
        assert!(cache.contains("c"));
        assert_eq!(cache.metrics.evictions, 1);
    }

    #[test]
    fn replacing_entry_updates_byte_accounting() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        cache.store("u", &req, &cacheable_response(100, "v1"), 0, 0);
        let used1 = cache.used_bytes();
        cache.store("u", &req, &cacheable_response(100, "v2"), 1, 1);
        assert_eq!(cache.used_bytes(), used1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn vary_mismatch_is_a_miss() {
        let mut cache = HttpCache::unbounded();
        let req_gzip = Request::get("/r").with_header("accept-encoding", "gzip");
        let resp = cacheable_response(100, "v").with_header("vary", "Accept-Encoding");
        assert!(cache.store("u", &req_gzip, &resp, 0, 0));

        // Same selecting header: hit.
        assert!(matches!(
            cache.lookup_for("u", &req_gzip, 10),
            Lookup::Fresh(_)
        ));
        // Different selecting header: miss.
        let req_br = Request::get("/r").with_header("accept-encoding", "br");
        assert!(matches!(cache.lookup_for("u", &req_br, 10), Lookup::Miss));
        // Absent selecting header: miss too.
        let req_none = Request::get("/r");
        assert!(matches!(cache.lookup_for("u", &req_none, 10), Lookup::Miss));
    }

    #[test]
    fn vary_star_never_matches() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        let resp = cacheable_response(100, "v").with_header("vary", "*");
        assert!(cache.store("u", &req, &resp, 0, 0));
        assert!(matches!(cache.lookup_for("u", &req, 10), Lookup::Miss));
        // The vary-ignoring lookup still sees it (diagnostics path).
        assert!(matches!(cache.lookup("u", 10), Lookup::Fresh(_)));
    }

    #[test]
    fn no_vary_matches_any_request() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r").with_header("accept-encoding", "gzip");
        let resp = cacheable_response(100, "v");
        assert!(cache.store("u", &req, &resp, 0, 0));
        let other = Request::get("/r").with_header("accept-encoding", "br");
        assert!(matches!(
            cache.lookup_for("u", &other, 10),
            Lookup::Fresh(_)
        ));
    }

    #[test]
    fn invalidate_and_clear() {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        cache.store("u", &req, &cacheable_response(100, "v"), 0, 0);
        cache.invalidate("u");
        assert!(!cache.contains("u"));
        assert_eq!(cache.used_bytes(), 0);
        cache.store("u", &req, &cacheable_response(100, "v"), 0, 0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0);
    }
}
