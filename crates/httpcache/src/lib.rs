//! # cachecatalyst-httpcache
//!
//! The private (browser) HTTP cache the page-load engine uses: RFC 9111
//! freshness-lifetime and age computation ([`freshness`]), storage with
//! validators, `304 Not Modified` refresh and LRU eviction ([`cache`]),
//! and effectiveness counters ([`metrics`]).
//!
//! This is the *status quo* machinery whose revalidation RTTs the
//! paper eliminates; the CacheCatalyst service worker (in
//! `cachecatalyst-catalyst`) is layered in front of it.

pub mod cache;
pub mod freshness;
pub mod metrics;

pub use cache::{CacheEntry, HttpCache, Lookup};
pub use freshness::{current_age, freshness_lifetime, is_fresh, swr_usable};
pub use metrics::CacheMetrics;
