//! Freshness lifetime and age calculation (RFC 9111 §4.2).

use std::time::Duration;

use cachecatalyst_httpwire::{HeaderName, HttpDate, Response};

/// Computes the freshness lifetime of a stored response for a private
/// (browser) cache: explicit `max-age`, else `Expires − Date`, else a
/// heuristic of 10% of `Date − Last-Modified` (capped at one day).
pub fn freshness_lifetime(resp: &Response) -> Duration {
    let cc = resp.cache_control();
    if let Some(max_age) = cc.max_age {
        return max_age;
    }
    if let (Some(expires), Some(date)) = (
        resp.headers
            .get(HeaderName::EXPIRES)
            .and_then(|v| HttpDate::parse_imf_fixdate(v).ok()),
        resp.date(),
    ) {
        return Duration::from_secs((expires.as_secs() - date.as_secs()).max(0) as u64);
    }
    // Heuristic freshness (§4.2.2) applies only to statuses that are
    // cacheable by default and only when a validator-era is known.
    if resp.status.is_heuristically_cacheable() {
        if let (Some(lm), Some(date)) = (resp.last_modified(), resp.date()) {
            let era = date.as_secs().saturating_sub(lm.as_secs()).max(0) as u64;
            return Duration::from_secs((era / 10).min(86_400));
        }
    }
    Duration::ZERO
}

/// Current age of a stored response (RFC 9111 §4.2.3, simplified to a
/// single-hop private cache with a virtual clock).
///
/// * `request_time` / `response_time`: virtual seconds when the request
///   was sent and the response received.
/// * `now`: current virtual seconds.
pub fn current_age(resp: &Response, request_time: i64, response_time: i64, now: i64) -> Duration {
    let age_header = resp.age().unwrap_or(0);
    let apparent_age = match resp.date() {
        Some(date) => (response_time - date.as_secs()).max(0) as u64,
        None => 0,
    };
    let response_delay = (response_time - request_time).max(0) as u64;
    let corrected_age_value = age_header + response_delay;
    let corrected_initial_age = apparent_age.max(corrected_age_value);
    let resident_time = (now - response_time).max(0) as u64;
    Duration::from_secs(corrected_initial_age + resident_time)
}

/// Whether a stored response is fresh at `now`.
pub fn is_fresh(resp: &Response, request_time: i64, response_time: i64, now: i64) -> bool {
    // `no-cache` means: stored, but never served without revalidation.
    if resp.cache_control().no_cache {
        return false;
    }
    current_age(resp, request_time, response_time, now) < freshness_lifetime(resp)
}

/// Whether a *stale* response may still be served while a background
/// revalidation runs (RFC 5861 `stale-while-revalidate`).
pub fn swr_usable(resp: &Response, request_time: i64, response_time: i64, now: i64) -> bool {
    let cc = resp.cache_control();
    if cc.no_cache || cc.no_store || cc.must_revalidate {
        return false;
    }
    let Some(window) = cc.stale_while_revalidate else {
        return false;
    };
    let age = current_age(resp, request_time, response_time, now);
    age < freshness_lifetime(resp) + window
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachecatalyst_httpwire::Response;

    fn resp_with(headers: &[(&str, &str)]) -> Response {
        let mut r = Response::ok("body");
        for (n, v) in headers {
            r.headers.insert(n, v);
        }
        r
    }

    #[test]
    fn max_age_wins() {
        let r = resp_with(&[
            ("cache-control", "max-age=60"),
            ("expires", &HttpDate(1_000_000).to_imf_fixdate()),
            ("date", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert_eq!(freshness_lifetime(&r), Duration::from_secs(60));
    }

    #[test]
    fn expires_minus_date() {
        let r = resp_with(&[
            ("date", &HttpDate(1000).to_imf_fixdate()),
            ("expires", &HttpDate(4600).to_imf_fixdate()),
        ]);
        assert_eq!(freshness_lifetime(&r), Duration::from_secs(3600));
    }

    #[test]
    fn expired_expires_is_zero() {
        let r = resp_with(&[
            ("date", &HttpDate(5000).to_imf_fixdate()),
            ("expires", &HttpDate(1000).to_imf_fixdate()),
        ]);
        assert_eq!(freshness_lifetime(&r), Duration::ZERO);
    }

    #[test]
    fn heuristic_is_ten_percent_of_era() {
        let r = resp_with(&[
            ("date", &HttpDate(100_000).to_imf_fixdate()),
            ("last-modified", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert_eq!(freshness_lifetime(&r), Duration::from_secs(10_000));
    }

    #[test]
    fn heuristic_capped_at_one_day() {
        let r = resp_with(&[
            ("date", &HttpDate(10_000_000).to_imf_fixdate()),
            ("last-modified", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert_eq!(freshness_lifetime(&r), Duration::from_secs(86_400));
    }

    #[test]
    fn no_validators_no_heuristic() {
        let r = resp_with(&[]);
        assert_eq!(freshness_lifetime(&r), Duration::ZERO);
    }

    #[test]
    fn age_accumulates_residency() {
        let r = resp_with(&[("date", &HttpDate(100).to_imf_fixdate())]);
        // received at t=100 (no delay), now t=160 → age 60.
        assert_eq!(current_age(&r, 100, 100, 160), Duration::from_secs(60));
    }

    #[test]
    fn age_header_and_delay_are_counted() {
        let r = resp_with(&[("date", &HttpDate(100).to_imf_fixdate()), ("age", "30")]);
        // requested at 100, received at 110 (delay 10): corrected age
        // = 30 + 10 = 40; at now=120, +10 residency → 50.
        assert_eq!(current_age(&r, 100, 110, 120), Duration::from_secs(50));
    }

    #[test]
    fn freshness_decision() {
        let r = resp_with(&[
            ("cache-control", "max-age=100"),
            ("date", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert!(is_fresh(&r, 0, 0, 99));
        assert!(!is_fresh(&r, 0, 0, 100));
    }

    #[test]
    fn swr_window() {
        let r = resp_with(&[
            ("cache-control", "max-age=100, stale-while-revalidate=50"),
            ("date", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert!(is_fresh(&r, 0, 0, 99));
        assert!(!is_fresh(&r, 0, 0, 120));
        assert!(swr_usable(&r, 0, 0, 120), "within the SWR window");
        assert!(!swr_usable(&r, 0, 0, 150), "window elapsed");
        // Without the directive, never SWR-usable.
        let plain = resp_with(&[
            ("cache-control", "max-age=100"),
            ("date", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert!(!swr_usable(&plain, 0, 0, 120));
        // must-revalidate forbids it (RFC 5861 §4).
        let strict = resp_with(&[
            (
                "cache-control",
                "max-age=100, stale-while-revalidate=50, must-revalidate",
            ),
            ("date", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert!(!swr_usable(&strict, 0, 0, 120));
    }

    #[test]
    fn no_cache_is_never_fresh() {
        let r = resp_with(&[
            ("cache-control", "no-cache, max-age=100"),
            ("date", &HttpDate(0).to_imf_fixdate()),
        ]);
        assert!(!is_fresh(&r, 0, 0, 1));
    }
}
