//! Property-based tests for the browser cache: a reference model for
//! freshness decisions, byte-accounting invariants, and robustness of
//! the store/lookup/304 lifecycle under arbitrary operation sequences.

use cachecatalyst_httpcache::{HttpCache, Lookup};
use cachecatalyst_httpwire::{HttpDate, Request, Response};
use proptest::prelude::*;

fn cacheable(max_age: u64, etag_n: u8, body_len: usize, date: i64) -> Response {
    Response::ok(vec![b'x'; body_len])
        .with_header("cache-control", &format!("max-age={max_age}"))
        .with_header("etag", &format!("\"e{etag_n}\""))
        .with_header("date", &HttpDate(date).to_imf_fixdate())
}

#[derive(Debug, Clone)]
enum Op {
    Store {
        key: u8,
        max_age: u64,
        etag: u8,
        body_len: usize,
        at: i64,
    },
    Lookup {
        key: u8,
        at: i64,
    },
    Refresh304 {
        key: u8,
        at: i64,
    },
    Invalidate {
        key: u8,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 0u64..1_000, 0u8..4, 0usize..4_096, 0i64..10_000).prop_map(
            |(key, max_age, etag, body_len, at)| Op::Store {
                key,
                max_age,
                etag,
                body_len,
                at
            }
        ),
        (0u8..6, 0i64..20_000).prop_map(|(key, at)| Op::Lookup { key, at }),
        (0u8..6, 0i64..20_000).prop_map(|(key, at)| Op::Refresh304 { key, at }),
        (0u8..6).prop_map(|key| Op::Invalidate { key }),
    ]
}

proptest! {
    /// Freshness decisions match the analytic model: an entry stored at
    /// `t` with max-age `m` is Fresh strictly before `t+m` and Stale
    /// from then on (single-key, monotone time).
    #[test]
    fn freshness_boundary_is_exact(max_age in 1u64..100_000, probe in 0u64..200_000) {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        let stored_at = 1_000i64;
        let resp = cacheable(max_age, 0, 64, stored_at);
        prop_assert!(cache.store("u", &req, &resp, stored_at, stored_at));
        let now = stored_at + probe as i64;
        match cache.lookup("u", now) {
            Lookup::Fresh(_) => prop_assert!(probe < max_age, "fresh at age {probe} ≥ {max_age}"),
            Lookup::Stale { .. } => prop_assert!(probe >= max_age, "stale at age {probe} < {max_age}"),
            Lookup::Miss => prop_assert!(false, "stored entry cannot miss"),
        }
    }

    /// Arbitrary operation sequences never corrupt the cache: byte
    /// accounting stays consistent, lookups never panic, and a Fresh
    /// body always equals the last stored body for that key.
    #[test]
    fn model_equivalence(ops in prop::collection::vec(arb_op(), 1..64)) {
        let mut cache = HttpCache::unbounded();
        let req = Request::get("/r");
        // Reference model: key → (etag, body_len, stored_at, max_age)
        let mut model: std::collections::HashMap<u8, (u8, usize, i64, u64)> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::Store { key, max_age, etag, body_len, at } => {
                    let resp = cacheable(max_age, etag, body_len, at);
                    let stored = cache.store(&key.to_string(), &req, &resp, at, at);
                    prop_assert!(stored);
                    model.insert(key, (etag, body_len, at, max_age));
                }
                Op::Lookup { key, at } => {
                    match (cache.lookup(&key.to_string(), at), model.get(&key)) {
                        (Lookup::Miss, None) => {}
                        (Lookup::Miss, Some(_)) => prop_assert!(false, "model has entry, cache missed"),
                        (_, None) => prop_assert!(false, "cache has entry, model does not"),
                        (Lookup::Fresh(resp), Some(&(etag, body_len, _, _))) => {
                            prop_assert_eq!(resp.body.len(), body_len);
                            let expect = format!("\"e{etag}\"");
                            prop_assert_eq!(resp.headers.get("etag"), Some(expect.as_str()));
                        }
                        (Lookup::Stale { etag: e, .. }, Some(&(etag, _, _, _))) => {
                            prop_assert_eq!(e, Some(format!("\"e{etag}\"")));
                        }
                    }
                }
                Op::Refresh304 { key, at } => {
                    let resp304 = Response::not_modified(None)
                        .with_header("date", &HttpDate(at).to_imf_fixdate());
                    let refreshed = cache.update_with_304(&key.to_string(), &resp304, at, at);
                    prop_assert_eq!(refreshed.is_some(), model.contains_key(&key));
                    if let Some(entry) = model.get_mut(&key) {
                        entry.2 = at; // freshness clock restarts
                    }
                }
                Op::Invalidate { key } => {
                    cache.invalidate(&key.to_string());
                    model.remove(&key);
                }
            }
            prop_assert_eq!(cache.len(), model.len());
            // Byte accounting: used = Σ(body + overhead).
            let expect: u64 = model.values().map(|&(_, len, _, _)| len as u64 + 512).sum();
            prop_assert_eq!(cache.used_bytes(), expect);
        }
    }

    /// Capacity is always respected after any store sequence (when more
    /// than one entry exists, eviction brings usage back under budget).
    #[test]
    fn capacity_respected(
        sizes in prop::collection::vec(1usize..5_000, 2..24),
        capacity in 2_000u64..20_000,
    ) {
        let mut cache = HttpCache::new(capacity);
        let req = Request::get("/r");
        for (i, &len) in sizes.iter().enumerate() {
            let resp = cacheable(1_000, 0, len, i as i64);
            cache.store(&format!("k{i}"), &req, &resp, i as i64, i as i64);
            prop_assert!(
                cache.used_bytes() <= capacity || cache.len() <= 1,
                "over budget with {} entries ({} > {capacity})",
                cache.len(),
                cache.used_bytes()
            );
        }
    }
}
