//! Revisit timelines for a realistic generated site: how PLT and the
//! fetch mix evolve with the time since the previous visit, under the
//! status quo and under CacheCatalyst.
//!
//! Run with: `cargo run --release --example revisit_timeline`

use std::sync::Arc;
use std::time::Duration;

use cachecatalyst::prelude::*;

fn main() {
    let site = Site::generate(SiteSpec {
        host: "news.example".into(),
        seed: 42,
        n_resources: 60,
        js_discovered_fraction: 0.1,
        ..Default::default()
    });
    let base = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    let cond = NetworkConditions::five_g_median();
    let t0: i64 = 40 * 86_400;

    let delays = [
        ("1 minute", Duration::from_secs(60)),
        ("1 hour", Duration::from_secs(3600)),
        ("6 hours", Duration::from_secs(6 * 3600)),
        ("1 day", Duration::from_secs(86_400)),
        ("1 week", Duration::from_secs(7 * 86_400)),
    ];

    println!(
        "Site {} ({} resources, {:.1} MB) at {}\n",
        site.spec.host,
        site.len(),
        site.total_bytes() as f64 / 1e6,
        cond.label()
    );
    println!(
        "{:<10} | {:>9} {:>5} {:>5} {:>5} | {:>9} {:>5} {:>5} {:>5} | {:>7}",
        "revisit", "base ms", "GET", "304", "hit", "cat ms", "GET", "304", "sw", "gain"
    );
    println!("{}", "-".repeat(92));

    for (label, delay) in delays {
        let t1 = t0 + delay.as_secs() as i64;

        let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Baseline));
        let upstream = SingleOrigin(origin);
        let mut b = Browser::baseline();
        b.load(&upstream, cond, &base, t0);
        let baseline = b.load(&upstream, cond, &base, t1);

        let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));
        let upstream = SingleOrigin(origin);
        let mut c = Browser::catalyst();
        c.load(&upstream, cond, &base, t0);
        let catalyst = c.load(&upstream, cond, &base, t1);

        println!(
            "{:<10} | {:>9.1} {:>5} {:>5} {:>5} | {:>9.1} {:>5} {:>5} {:>5} | {:>6.1}%",
            label,
            baseline.plt_ms(),
            baseline.full_transfers,
            baseline.not_modified,
            baseline.cache_hits,
            catalyst.plt_ms(),
            catalyst.full_transfers,
            catalyst.not_modified,
            catalyst.sw_hits,
            (baseline.plt_ms() - catalyst.plt_ms()) / baseline.plt_ms() * 100.0
        );
    }

    println!("\nReading the table: as the revisit delay grows, more TTLs expire in the");
    println!("baseline (GET/304 columns grow, hit column shrinks) while CacheCatalyst");
    println!("keeps serving unchanged resources from the service worker (sw column).");
}
