//! Model *your own* site from a plain-text inventory and measure what
//! CacheCatalyst would do for it — then export the warm-visit
//! waterfall as a HAR file for standard tooling.
//!
//! Run with: `cargo run --example own_site`

use std::sync::Arc;

use cachecatalyst::browser::to_har;
use cachecatalyst::prelude::*;
use cachecatalyst::webmodel::site_from_inventory;

const INVENTORY: &str = r#"
@host www.shop.example
# path            kind  bytes   change      current headers
/index.html       html  42000   period=2h   policy=no-cache
/css/site.css     css   18000   period=30d  policy=max-age:86400  parent=/index.html
/css/theme.css    css    9000   period=90d  policy=no-cache       parent=/index.html
/js/app.js        js    95000   period=7d   policy=no-cache       parent=/index.html
/js/vendor.js     js   210000   immutable   policy=max-age:604800 parent=/index.html
/api/prices.json  json    3000  period=15m  policy=no-store       js-parent=/js/app.js
/img/hero.jpg     image 240000  immutable   policy=max-age:604800 parent=/index.html
/img/promo-1.jpg  image  80000  period=1d   policy=max-age:3600   parent=/index.html
/img/promo-2.jpg  image  75000  period=1d   policy=max-age:3600   parent=/index.html
/fonts/brand.woff2 font  52000  immutable   policy=max-age:604800 parent=/css/site.css
"#;

fn main() {
    let site = site_from_inventory(INVENTORY).expect("inventory parses");
    let base = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    let cond = NetworkConditions::five_g_median();
    let t0: i64 = 0;
    let revisit = 3600; // the shopper returns an hour later

    println!(
        "site {} — {} resources, {:.0} KB total, {}\n",
        site.spec.host,
        site.len(),
        site.total_bytes() as f64 / 1000.0,
        cond.label()
    );

    let mut har_output = None;
    for (label, mode) in [
        ("current headers", HeaderMode::Baseline),
        ("cachecatalyst", HeaderMode::Catalyst),
    ] {
        let origin = Arc::new(OriginServer::new(site.clone(), mode));
        let upstream = SingleOrigin(origin);
        let mut browser = match mode {
            HeaderMode::Baseline => Browser::baseline(),
            _ => Browser::catalyst(),
        };
        let cold = browser.load(&upstream, cond, &base, t0);
        let warm = browser.load(&upstream, cond, &base, t0 + revisit);
        println!(
            "{label:>16}: cold {:6.1} ms | warm {:6.1} ms | warm requests {:2} | warm {:3} KB",
            cold.plt_ms(),
            warm.plt_ms(),
            warm.network_requests(),
            warm.bytes_down / 1000
        );
        if mode == HeaderMode::Catalyst {
            har_output = Some(to_har(&warm, "2026-07-06T00:00:00.000Z"));
        }
    }

    let har = har_output.unwrap();
    let path = std::env::temp_dir().join("cachecatalyst-warm-visit.har");
    std::fs::write(&path, &har).expect("write HAR");
    println!(
        "\nwarm-visit waterfall exported as HAR ({} bytes): {}",
        har.len(),
        path.display()
    );
    println!("open it with Chrome DevTools → Network → Import HAR.");
}
