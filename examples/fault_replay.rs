//! Replays one chaos schedule and prints its event sequence.
//!
//! ```text
//! cargo run --release --example fault_replay -- <topology> <seed>
//! ```
//!
//! `<topology>` is one of `catalyst`, `baseline`, `rdr-proxy`. The
//! run is fully deterministic: the same pair always produces the same
//! fingerprint, so a failing seed from `tests/fault_resilience.rs` or
//! the CI chaos-soak job can be replayed line for line. Exits
//! non-zero if the serve-correct-bytes oracle fails.

use cachecatalyst::chaos::{self, Topology};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (topology, seed) = match args.as_slice() {
        [t, s] => {
            let topology = Topology::parse(t).unwrap_or_else(|| {
                eprintln!("unknown topology {t:?}; use catalyst | baseline | rdr-proxy");
                std::process::exit(2);
            });
            let seed: u64 = s.parse().unwrap_or_else(|_| {
                eprintln!("seed must be an unsigned integer, got {s:?}");
                std::process::exit(2);
            });
            (topology, seed)
        }
        _ => {
            eprintln!("usage: fault_replay <topology> <seed>");
            std::process::exit(2);
        }
    };

    let run = chaos::run_seed(topology, seed);
    println!("# topology={} seed={}", topology.label(), seed);
    println!(
        "# reference: plt={:.3}ms fetches={}",
        run.reference.plt_ms(),
        run.reference.trace.fetches.len()
    );
    for (f, audit) in run
        .reference
        .trace
        .fetches
        .iter()
        .zip(&run.reference.audits)
    {
        println!(
            "# ref {} decision={} digest={:?}",
            f.url,
            audit.decision.as_str(),
            audit.body_digest
        );
    }
    for line in chaos::fingerprint(&run) {
        println!("{line}");
    }
    match chaos::check_oracle(&run) {
        Ok(()) => println!("# oracle: OK"),
        Err(e) => {
            println!("# oracle: FAILED: {e}");
            std::process::exit(1);
        }
    }
}
