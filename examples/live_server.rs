//! End to end over real sockets: a tokio TCP origin serving the
//! CacheCatalyst protocol, spoken to with our own HTTP/1.1 client
//! through an emulated 60 Mbps / 40 ms access link.
//!
//! Run with: `cargo run --example live_server`

use std::sync::Arc;

use cachecatalyst::httpwire::aio::ClientConn;
use cachecatalyst::netsim::emu::emulated_link;
use cachecatalyst::origin::{watch_clock, TcpOrigin};
use cachecatalyst::prelude::*;
use tokio::net::TcpStream;
use tokio::sync::watch;

#[tokio::main(flavor = "current_thread")]
async fn main() {
    let (clock_tx, clock_rx) = watch::channel(0i64);
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));

    // 1. A real TCP listener on loopback.
    let server = TcpOrigin::builder()
        .server(Arc::clone(&origin))
        .clock(watch_clock(clock_rx.clone()))
        .bind("127.0.0.1:0")
        .await
        .expect("bind loopback");
    println!("origin listening on http://{}\n", server.local_addr);

    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut client = ClientConn::new(stream);

    // First visit: fetch the base HTML; note the X-Etag-Config map.
    let resp = client
        .round_trip(&Request::get("/index.html").with_header("host", "example.org"))
        .await
        .unwrap();
    println!(
        "GET /index.html → {} ({} bytes)",
        resp.status,
        resp.body.len()
    );
    let config = EtagConfig::from_response(&resp).unwrap();
    println!("X-Etag-Config entries: {}", config.len());
    let css_tag = config.get("/a.css").unwrap().clone();
    println!("  /a.css = {css_tag}");
    assert!(String::from_utf8_lossy(&resp.body).contains("serviceWorker"));
    println!("  (SW registration injected into the HTML)\n");

    // Fetch a subresource, then revalidate it two hours later.
    let resp = client.round_trip(&Request::get("/a.css")).await.unwrap();
    println!("GET /a.css → {} ({} bytes)", resp.status, resp.body.len());
    assert_eq!(resp.etag().unwrap(), css_tag);

    clock_tx.send(7200).unwrap(); // advance the virtual clock 2h
    let revalidate = Request::get("/a.css").with_header("if-none-match", &css_tag.to_string());
    let resp = client.round_trip(&revalidate).await.unwrap();
    println!(
        "GET /a.css (If-None-Match, +2h) → {} — unchanged, no body\n",
        resp.status
    );
    assert_eq!(resp.status, StatusCode::NOT_MODIFIED);

    // 2. The same protocol through an emulated 5G-median access link.
    let cond = NetworkConditions::five_g_median();
    println!(
        "repeating the navigation through an emulated {} link…",
        cond.label()
    );
    let (client_end, server_end) = emulated_link(cond);
    let opts = TcpOrigin::builder()
        .server(Arc::clone(&origin))
        .clock(watch_clock(clock_rx));
    tokio::spawn(async move {
        let _ = opts.serve_stream(server_end).await;
    });
    let mut emu_client = ClientConn::new(client_end);
    let start = std::time::Instant::now();
    let resp = emu_client
        .round_trip(&Request::get("/index.html").with_header("host", "example.org"))
        .await
        .unwrap();
    let elapsed = start.elapsed();
    println!(
        "GET /index.html → {} in {:.1} ms (≥ RTT {} ms plus transfer)",
        resp.status,
        elapsed.as_secs_f64() * 1000.0,
        cond.rtt.as_millis()
    );
    assert!(elapsed >= cond.rtt);

    server.shutdown().await;
    println!("\ndone.");
}
