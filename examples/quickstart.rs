//! Quickstart: load the paper's example page with and without
//! CacheCatalyst and watch the revalidation round trips disappear.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use cachecatalyst::prelude::*;

fn main() {
    // The Figure-1 example page: index.html → a.css (max-age 1w),
    // b.js (no-cache) → c.js → d.jpg (max-age 1h).
    let cond = NetworkConditions::five_g_median(); // 60 Mbps / 40 ms RTT
    let base = Url::parse("http://example.org/index.html").unwrap();
    let revisit_at = 2 * 3600; // two hours later, like the figure

    println!("Loading {base} at {} (revisit after 2h)\n", cond.label());

    // --- Status quo: developer cache headers + browser HTTP cache ---
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let upstream = SingleOrigin(origin);
    let mut browser = Browser::baseline();
    let cold = browser.load(&upstream, cond, &base, 0);
    let warm = browser.load(&upstream, cond, &base, revisit_at);
    println!(
        "status quo : cold {:7.1} ms | warm {:7.1} ms | {} requests, {} revalidations",
        cold.plt_ms(),
        warm.plt_ms(),
        warm.network_requests(),
        warm.not_modified
    );

    // --- CacheCatalyst: X-Etag-Config + service worker ---
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let upstream = SingleOrigin(origin);
    let mut browser = Browser::catalyst();
    let cold = browser.load(&upstream, cond, &base, 0);
    let warm = browser.load(&upstream, cond, &base, revisit_at);
    println!(
        "catalyst   : cold {:7.1} ms | warm {:7.1} ms | {} requests, {} served by SW",
        cold.plt_ms(),
        warm.plt_ms(),
        warm.network_requests(),
        warm.sw_hits
    );

    println!("\nWarm-visit waterfall with CacheCatalyst:");
    println!("{}", warm.trace.render_waterfall(44));

    // Peek at the mechanism itself: the header the server attaches.
    let origin = OriginServer::new(example_site(), HeaderMode::Catalyst);
    let resp = origin.handle(&Request::get("/index.html"), revisit_at);
    let config = EtagConfig::from_response(&resp).unwrap();
    println!(
        "X-Etag-Config carried by the base HTML ({} entries):",
        config.len()
    );
    for (path, tag) in config.iter() {
        println!("  {path} = {tag}");
    }
}
