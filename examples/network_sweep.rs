//! A miniature Figure 3 through the public API: sweep network
//! conditions and print the PLT reduction grid for a handful of sites.
//!
//! Run with: `cargo run --release --example network_sweep`

use std::sync::Arc;
use std::time::Duration;

use cachecatalyst::prelude::*;

fn main() {
    let sites = generate_corpus(&CorpusSpec {
        n_sites: 8,
        ..Default::default()
    });
    let delay = Duration::from_secs(6 * 3600);

    println!("PLT reduction of CacheCatalyst vs status quo");
    println!("({} sites, revisit after 6h)\n", sites.len());
    print!("{:>10}", "thr \\ rtt");
    for rtt in NetworkConditions::figure3_latencies() {
        print!("{:>8}", format!("{}ms", rtt.as_millis()));
    }
    println!();

    for bps in NetworkConditions::figure3_throughputs() {
        print!("{:>10}", format!("{}Mbps", bps / 1_000_000));
        for rtt in NetworkConditions::figure3_latencies() {
            let cond = NetworkConditions::new(rtt, bps);
            let mut base_plt = 0.0;
            let mut cat_plt = 0.0;
            for site in &sites {
                let url =
                    Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
                let t0: i64 = 35 * 86_400;
                let t1 = t0 + delay.as_secs() as i64;

                let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Baseline));
                let up = SingleOrigin(origin);
                let mut b = Browser::baseline();
                b.load(&up, cond, &url, t0);
                base_plt += b.load(&up, cond, &url, t1).plt_ms();

                let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));
                let up = SingleOrigin(origin);
                let mut c = Browser::catalyst();
                c.load(&up, cond, &url, t0);
                cat_plt += c.load(&up, cond, &url, t1).plt_ms();
            }
            print!(
                "{:>8}",
                format!("{:.0}%", (base_plt - cat_plt) / base_plt * 100.0)
            );
        }
        println!();
    }

    println!("\nThe paper's observation: little gain where bandwidth is the bottleneck");
    println!("(8 Mbps, low RTT); large gains where latency dominates (60 Mbps, high RTT).");
}
