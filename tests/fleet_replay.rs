//! Replay parity: a recorded workload trace replayed through the
//! in-memory fleet engine and through the real `TcpEdge` front end
//! produces the same per-user edge cache-decision audit sequence —
//! the discrete-event results and the socket-level results describe
//! one system, not two.
//!
//! Timing on the TCP leg is wall-clock and scheduler-noisy, so PLT
//! stability between two identical TCP replays is asserted with
//! `chaos::within_band` plus `chaos::live_slack_ms` of absolute slack
//! (the offline tokio stand-in re-polls IO readiness every ~250 µs);
//! the audit sequences, by contrast, must match exactly.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use cachecatalyst::browser::live::{ByteStream, Dialer, LiveBrowser, LiveMode};
use cachecatalyst::browser::ClientOptions;
use cachecatalyst::chaos::{live_slack_ms, within_band};
use cachecatalyst::edge::{EdgeCache, TcpEdge};
use cachecatalyst::origin::watch_clock;
use cachecatalyst::prelude::*;
use cachecatalyst::telemetry::{Event, MemoryRecorder};
use cachecatalyst_bench::fleet::{fleet_corpus, run_fleet, FleetOptions};
use cachecatalyst_bench::runner::base_url_of;
use cachecatalyst_bench::ClientKind;
use cachecatalyst_webmodel::workload::{generate, Trace, WorkloadSpec};
use tokio::net::TcpStream;
use tokio::sync::watch;

const RESOURCES_MEDIAN: f64 = 12.0;

fn parity_trace() -> Trace {
    generate(&WorkloadSpec {
        users: 25,
        sites: 3,
        horizon_secs: 10_800,
        seed: 99,
        ..Default::default()
    })
}

/// The comparable form of one visit's edge decisions: URL-sorted
/// (the live loader fetches subresources concurrently, so arrival
/// order at the edge is not deterministic — the decision *per URL*
/// is).
type VisitAudits = Vec<(String, String, Option<u64>)>;

fn drain_audits(recorder: &MemoryRecorder) -> VisitAudits {
    let mut audits: VisitAudits = recorder
        .take()
        .into_iter()
        .filter_map(|e| match e {
            Event::CacheDecision { audit, .. } => Some((
                audit.url,
                audit.decision.as_str().to_owned(),
                audit.body_digest,
            )),
            _ => None,
        })
        .collect();
    audits.sort();
    audits
}

fn tcp_dialer(addr: SocketAddr) -> Dialer {
    Arc::new(move |_host: String| {
        Box::pin(async move {
            let stream = TcpStream::connect(addr).await?;
            stream.set_nodelay(true).ok();
            Ok(Box::new(stream) as Box<dyn ByteStream>)
        })
    })
}

/// One full TCP replay of `trace`: persistent per-user `LiveBrowser`
/// profiles against a `TcpEdge` whose virtual clock is advanced to
/// each event's timestamp. Returns the per-visit audit sequences and
/// per-visit PLTs (ms).
async fn replay_over_tcp(trace: &Trace, kind: ClientKind) -> (Vec<VisitAudits>, Vec<f64>) {
    let mode = match kind {
        ClientKind::Baseline => LiveMode::Baseline,
        _ => LiveMode::Catalyst,
    };
    let sites = fleet_corpus(trace, RESOURCES_MEDIAN);
    let base_urls: Vec<Url> = sites.iter().map(base_url_of).collect();
    let mut multi = MultiOrigin::new();
    for site in sites {
        let host = site.spec.host.clone();
        multi.add(&host, Arc::new(OriginServer::new(site, kind.header_mode())));
    }

    let recorder = Arc::new(MemoryRecorder::new());
    let opts = ClientOptions::new().recorder(Arc::clone(&recorder) as _);
    let edge = Arc::new(
        EdgeCache::builder(multi)
            .byte_budget(FleetOptions::default().edge_budget)
            .client_options(&opts)
            .build(),
    );
    let (clock_tx, clock_rx) = watch::channel(0i64);
    let server = TcpEdge::bind("127.0.0.1:0", Arc::clone(&edge), watch_clock(clock_rx))
        .await
        .expect("bind edge");
    let dialer = tcp_dialer(server.local_addr);

    let mut browsers: HashMap<u32, LiveBrowser> = HashMap::new();
    let mut audits = Vec::with_capacity(trace.events.len());
    let mut plts = Vec::with_capacity(trace.events.len());
    for event in &trace.events {
        let t_secs = (event.t_ms / 1000) as i64;
        clock_tx.send(t_secs).expect("advance clock");
        let browser = browsers
            .entry(event.user)
            .or_insert_with(|| LiveBrowser::new(Arc::clone(&dialer), mode));
        browser.now_secs = t_secs;
        let report = browser
            .load(&base_urls[event.site as usize])
            .await
            .expect("live load");
        assert_eq!(report.retries, 0, "loopback must not need retries");
        audits.push(drain_audits(&recorder));
        plts.push(report.plt.as_secs_f64() * 1000.0);
    }
    server.shutdown().await;
    (audits, plts)
}

/// In-memory leg of the same replay (the fleet engine with audit
/// collection on), reshaped into the comparable form.
fn replay_in_memory(trace: &Trace, kind: ClientKind) -> Vec<VisitAudits> {
    let report = run_fleet(
        trace,
        &FleetOptions {
            kind,
            resources_median: RESOURCES_MEDIAN,
            collect_audits: true,
            ..Default::default()
        },
    );
    report
        .audits
        .expect("collect_audits was on")
        .into_iter()
        .map(|visit| {
            let mut v: VisitAudits = visit
                .into_iter()
                .map(|a| (a.url, a.decision.as_str().to_owned(), a.body_digest))
                .collect();
            v.sort();
            v
        })
        .collect()
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn tcp_replay_matches_in_memory_audit_sequence() {
    let trace = parity_trace();
    assert!(trace.events.len() >= 15, "trace too small to mean much");
    for kind in [ClientKind::Baseline, ClientKind::Catalyst] {
        let sim = replay_in_memory(&trace, kind);
        let (tcp, _plts) = replay_over_tcp(&trace, kind).await;
        assert_eq!(sim.len(), tcp.len());
        for (i, (s, t)) in sim.iter().zip(&tcp).enumerate() {
            let e = &trace.events[i];
            assert_eq!(
                s, t,
                "{kind:?}: visit {i} (user {}, site {}, t={}ms) audits diverge",
                e.user, e.site, e.t_ms
            );
        }
        // Non-vacuity: the sequences contain real decisions, and the
        // store actually served some of the traffic.
        let total: usize = sim.iter().map(Vec::len).sum();
        assert!(total > 20, "{kind:?}: only {total} audited decisions");
        assert!(
            sim.iter().flatten().any(|(_, d, _)| d == "edge-hit"),
            "{kind:?}: no edge hits in the whole replay"
        );
    }
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn tcp_replay_is_stable_across_runs() {
    let trace = parity_trace();
    let (audits_a, mut plts_a) = replay_over_tcp(&trace, ClientKind::Baseline).await;
    let (audits_b, mut plts_b) = replay_over_tcp(&trace, ClientKind::Baseline).await;
    assert_eq!(audits_a, audits_b, "audit sequences must be identical");
    // PLTs are wall-clock, so individual visits can be blown out by
    // scheduler preemption (this suite shares cores with whatever else
    // runs); only the *aggregate* timing is a stable property. Compare
    // medians with a generous band plus per-fetch slack.
    plts_a.sort_by(|a, b| a.partial_cmp(b).unwrap());
    plts_b.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (med_a, med_b) = (plts_a[plts_a.len() / 2], plts_b[plts_b.len() / 2]);
    let fetches_per_visit =
        audits_a.iter().map(Vec::len).sum::<usize>() / audits_a.len().max(1) + 1;
    assert!(
        within_band(med_a, med_b, 0.5, 4.0 * live_slack_ms(fetches_per_visit)),
        "median PLT {med_a:.1}ms vs {med_b:.1}ms not within band"
    );
    // Sleep guard: the watch-clock plumbing must not have left the
    // runtime wedged (regression canary for shutdown ordering).
    tokio::time::timeout(Duration::from_secs(5), async {})
        .await
        .unwrap();
}
