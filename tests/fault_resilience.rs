//! The DST-style fault-resilience invariant harness.
//!
//! Runs hundreds of seeded fault schedules across three topologies
//! (catalyst, baseline, RDR proxy) and checks the serve-correct-bytes
//! oracle on every one: the faulted revisit must deliver bodies
//! byte-identical (by FNV-64 digest) to an un-faulted reference load
//! at the same virtual time, with a complete audit trail and no stale
//! zero-RTT serves. Any failing seed is written to
//! `results/chaos_failure.txt` together with the exact replay command.

use cachecatalyst::chaos::{self, Topology};

const SEEDS_PER_TOPOLOGY: u64 = 70;

/// On failure, persist the seed and replay instructions so the
/// schedule can be replayed outside the test harness.
fn record_failure(lines: &[String]) {
    let _ = std::fs::create_dir_all("results");
    let mut body = String::from(
        "# Chaos-harness failures. Replay a line's schedule with the\n\
         # command shown; the run is fully deterministic.\n",
    );
    for l in lines {
        body.push_str(l);
        body.push('\n');
    }
    let _ = std::fs::write("results/chaos_failure.txt", body);
}

#[test]
fn oracle_holds_across_the_seed_matrix() {
    // 3 topologies × 70 seeds = 210 seeded schedules.
    let mut failures: Vec<String> = Vec::new();
    let mut faults_total = 0u64;
    let mut retries_total = 0u64;
    let mut degraded_total = 0u64;
    for topology in Topology::ALL {
        for seed in 1..=SEEDS_PER_TOPOLOGY {
            let run = chaos::run_seed(topology, seed);
            faults_total += u64::from(run.faulted.faults_injected);
            retries_total += u64::from(run.faulted.retries);
            degraded_total += run.faulted.degraded as u64;
            if let Err(verdict) = chaos::check_oracle(&run) {
                failures.push(format!(
                    "{verdict}\n    replay: {}",
                    chaos::replay_command(topology, seed)
                ));
            }
        }
    }
    if !failures.is_empty() {
        record_failure(&failures);
        panic!(
            "{} of {} chaos runs violated the oracle (see results/chaos_failure.txt):\n{}",
            failures.len(),
            3 * SEEDS_PER_TOPOLOGY,
            failures.join("\n")
        );
    }
    // The matrix must actually exercise the machinery, not vacuously
    // pass because nothing fired.
    assert!(
        faults_total > 100,
        "only {faults_total} faults fired across the whole matrix"
    );
    assert!(retries_total > 0, "no schedule forced a retry");
    assert!(degraded_total > 0, "no schedule forced a degraded path");
}

#[test]
fn replaying_a_seed_reproduces_the_identical_event_sequence() {
    let mut fired = 0u32;
    for topology in Topology::ALL {
        let first = chaos::run_seed(topology, 17);
        let second = chaos::run_seed(topology, 17);
        assert_eq!(
            chaos::fingerprint(&first),
            chaos::fingerprint(&second),
            "{}: same seed must replay byte-for-byte",
            topology.label()
        );
        fired += first.faulted.faults_injected + first.faulted.retries;
    }
    // A warm revisit makes few network requests, so a single topology
    // can legitimately draw no fault at this seed — but across all
    // three the schedule must have fired somewhere, or the replay
    // check is vacuous.
    assert!(fired > 0, "seed 17 drew no faults in any topology");
}

#[test]
fn different_seeds_explore_different_schedules() {
    let a = chaos::fingerprint(&chaos::run_seed(Topology::Catalyst, 5));
    let diverged =
        (6..=10u64).any(|s| chaos::fingerprint(&chaos::run_seed(Topology::Catalyst, s)) != a);
    assert!(diverged, "five consecutive seeds produced identical runs");
}
