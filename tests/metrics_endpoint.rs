//! Integration: the origin's operational endpoints over real TCP —
//! `/metrics` must expose valid Prometheus text covering the traffic
//! the connection just generated — and the browser's JSONL page-load
//! traces, whose per-fetch events must sum to the page's resources.

use std::sync::Arc;

use cachecatalyst::httpwire::aio::ClientConn;
use cachecatalyst::origin::{watch_clock_ms, TcpOrigin};
use cachecatalyst::prelude::*;
use cachecatalyst::telemetry::JsonlRecorder;
use tokio::net::TcpStream;
use tokio::sync::watch;

/// Starts an origin with the operational endpoints enabled (they are
/// opt-in: the builder serves site traffic only unless `.ops(true)`).
/// The returned sender drives a millisecond-resolution virtual clock.
async fn start_origin(mode: HeaderMode) -> (TcpOrigin, watch::Sender<i64>) {
    let (tx, rx) = watch::channel(0i64);
    let origin = Arc::new(OriginServer::new(example_site(), mode));
    let server = TcpOrigin::builder()
        .server(origin)
        .clock(watch_clock_ms(rx))
        .ops(true)
        .bind("127.0.0.1:0")
        .await
        .expect("bind");
    (server, tx)
}

/// Extracts the value of a single-sample metric line (`name value` or
/// `name{labels} value`).
fn sample(text: &str, name_and_labels: &str) -> Option<f64> {
    text.lines()
        .find(|l| {
            l.strip_prefix(name_and_labels)
                .is_some_and(|rest| rest.starts_with(' '))
        })
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[tokio::test]
async fn metrics_cover_a_full_page_load() {
    let (server, clock) = start_origin(HeaderMode::Catalyst).await;
    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);

    // Cold visit: fetch the page and every subresource, keeping the
    // validators for the revisit.
    let paths = ["/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"];
    let mut etags = Vec::new();
    for path in paths {
        let resp = conn
            .round_trip(&Request::get(path).with_header("host", "example.org"))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        etags.push(resp.etag().expect("validator").to_string());
    }

    // Revisit one minute later (the clock carries milliseconds; the
    // extra 500 ms checks sub-second resolution survives end to end):
    // everything revalidates to 304.
    clock.send(60_500).unwrap();
    for (path, tag) in paths.iter().zip(&etags) {
        let resp = conn
            .round_trip(&Request::get(path).with_header("if-none-match", tag))
            .await
            .unwrap();
        assert_eq!(resp.status, StatusCode::NOT_MODIFIED, "{path}");
    }

    let scrape = conn.round_trip(&Request::get("/metrics")).await.unwrap();
    assert_eq!(scrape.status, StatusCode::OK);
    // Prometheus scrapers key the exposition-format version off the
    // Content-Type parameter; the text format is 0.0.4.
    assert_eq!(
        scrape.headers.get("content-type"),
        Some("text/plain; version=0.0.4")
    );
    let text = String::from_utf8(scrape.body.to_vec()).unwrap();

    // Request and status-class counters match the traffic above.
    let requests = sample(&text, "origin_requests_total{mode=\"catalyst\"}")
        .unwrap_or_else(|| panic!("missing request counter:\n{text}"));
    assert_eq!(requests, 10.0);
    assert_eq!(
        sample(&text, "origin_responses_total{class=\"2xx\"}"),
        Some(5.0)
    );
    assert_eq!(
        sample(&text, "origin_responses_total{class=\"3xx\"}"),
        Some(5.0)
    );
    // The 304 ratio of this run is computable and equals one half.
    let nm = sample(&text, "origin_not_modified_total").unwrap();
    assert_eq!(nm / requests, 0.5);
    // The scrape publishes the virtual clock at full ms resolution
    // (a seconds-quantizing clock would read 60000 here).
    assert_eq!(sample(&text, "origin_clock_milliseconds"), Some(60_500.0));
    // Map building happened and its cost is accounted.
    assert_eq!(sample(&text, "origin_map_entries"), Some(2.0));
    assert!(sample(&text, "origin_map_build_seconds_count").unwrap() >= 1.0);
    assert!(sample(&text, "origin_etag_config_header_bytes_total").unwrap() > 0.0);

    // The handle-latency histogram is present with cumulative buckets
    // ending in +Inf, and every exposition line is well formed.
    assert!(text.contains("origin_handle_seconds_bucket{mode=\"catalyst\",le=\"+Inf\"}"));
    assert_eq!(
        sample(&text, "origin_handle_seconds_count{mode=\"catalyst\"}"),
        Some(10.0)
    );
    for line in text.lines() {
        assert!(
            line.starts_with("# HELP ")
                || line.starts_with("# TYPE ")
                || line
                    .rsplit(' ')
                    .next()
                    .is_some_and(|v| v.parse::<f64>().is_ok()),
            "malformed exposition line: {line}"
        );
    }
    server.shutdown().await;
}

#[tokio::test]
async fn metrics_ignore_operational_endpoints() {
    let (server, _clock) = start_origin(HeaderMode::Baseline).await;
    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);

    let health = conn.round_trip(&Request::get("/healthz")).await.unwrap();
    assert_eq!(health.status, StatusCode::OK);
    conn.round_trip(&Request::get("/metrics")).await.unwrap();
    let scrape = conn.round_trip(&Request::get("/metrics")).await.unwrap();
    let text = String::from_utf8(scrape.body.to_vec()).unwrap();
    // Scrapes and health checks are answered before site dispatch, so
    // they never inflate origin traffic counters.
    assert!(
        !text.contains("origin_requests_total"),
        "no site traffic yet:\n{text}"
    );
    server.shutdown().await;
}

#[test]
fn jsonl_trace_outcomes_sum_to_resource_count() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let upstream = SingleOrigin(origin);
    let base = Url::parse("http://example.org/index.html").unwrap();
    let recorder = Arc::new(JsonlRecorder::new());
    let mut browser = Browser::catalyst().with_recorder(recorder.clone());

    browser.load(&upstream, NetworkConditions::five_g_median(), &base, 0);
    let trace = recorder.drain();

    let fetch_ends: Vec<&str> = trace
        .lines()
        .filter(|l| l.contains("\"event\":\"fetch_end\""))
        .collect();
    // The example page has five resources; each produced exactly one
    // terminal fetch event with a known outcome.
    assert_eq!(fetch_ends.len(), 5, "{trace}");
    let resources_line = trace
        .lines()
        .find(|l| l.contains("\"event\":\"page_load_end\""))
        .expect("page_load_end present");
    assert!(
        resources_line.contains("\"resources\":5"),
        "{resources_line}"
    );
    let count = |outcome: &str| {
        fetch_ends
            .iter()
            .filter(|l| l.contains(&format!("\"outcome\":\"{outcome}\"")))
            .count()
    };
    assert_eq!(
        count("full-fetch")
            + count("conditional-304")
            + count("cache-fresh")
            + count("etag-config-hit")
            + count("pushed"),
        5
    );
}
