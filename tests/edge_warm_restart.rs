//! Integration: zero-RTT warm restarts of the hybrid edge store.
//!
//! The PR 10 acceptance property: after an edge process restart, the
//! disk tier's recovered entries are *stale* (no freshness claim
//! survives un-verified), and the first base-HTML forward carries the
//! catalyst map that re-freshens them — index-only, **zero** origin
//! contact per re-freshened object. A tampered map must not re-freshen
//! anything; a cold direct hit must revalidate conditionally.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cachecatalyst::catalyst::tamper_config_headers;
use cachecatalyst::edge::{AdmissionPolicy, DiskTierOptions, EdgeCache, StoreOptions};
use cachecatalyst::prelude::*;
use cachecatalyst::webmodel::{
    ChangeModel, Discovery, GeneratedResource, HeaderPolicy, ResourceKind, ResourceSpec,
};

const HOST: &str = "edge-restart.example";

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A fresh scratch directory per test, safe under parallel test runs.
fn scratch_dir(name: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "cc-edge-restart-{}-{name}-{seq}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// FNV-1a, the digest the serve-correct-bytes oracle compares.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Counts every request that reaches the wrapped upstream — the
/// "zero origin contact" witness, independent of edge counters.
struct CountingUpstream<U> {
    inner: U,
    requests: AtomicU64,
}

impl<U: Upstream> CountingUpstream<U> {
    fn new(inner: U) -> CountingUpstream<U> {
        CountingUpstream {
            inner,
            requests: AtomicU64::new(0),
        }
    }

    fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

impl<U: Upstream> Upstream for CountingUpstream<U> {
    fn handle(&self, host: &str, req: &Request, t_secs: i64) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.inner.handle(host, req, t_secs)
    }
}

/// Damages every config map in transit (without re-signing).
struct TamperingUpstream<U>(U);

impl<U: Upstream> Upstream for TamperingUpstream<U> {
    fn handle(&self, host: &str, req: &Request, t_secs: i64) -> Response {
        let mut resp = self.0.handle(host, req, t_secs);
        tamper_config_headers(&mut resp, Some(0xBAD));
        resp
    }
}

/// The PR 5 nocache site: a base page with two static children, one
/// monthly-churn (unchanged at the +2h revisit) and one hourly-churn
/// (changed). `no-cache` everywhere, so classic freshness never masks
/// the catalyst mechanism.
fn nocache_site() -> Site {
    let mut site = Site::generate(SiteSpec {
        host: HOST.to_owned(),
        seed: 0xED62,
        n_resources: 0,
        ..Default::default()
    });
    let mut index = ResourceSpec::leaf(
        "/index.html",
        ResourceKind::Html,
        10_000,
        Discovery::Base,
        ChangeModel::Periodic {
            period: Duration::from_secs(90 * 60),
            phase: Duration::ZERO,
        },
    );
    index.static_children = vec!["/s1.css".to_owned(), "/s2.js".to_owned()];
    site.insert_resource(GeneratedResource {
        spec: index,
        policy: HeaderPolicy::NoCache,
    });
    site.insert_resource(GeneratedResource {
        spec: ResourceSpec::leaf(
            "/s1.css",
            ResourceKind::Css,
            20_000,
            Discovery::Static {
                parent: "/index.html".into(),
            },
            ChangeModel::Periodic {
                period: Duration::from_secs(30 * 24 * 3600),
                phase: Duration::ZERO,
            },
        ),
        policy: HeaderPolicy::NoCache,
    });
    site.insert_resource(GeneratedResource {
        spec: ResourceSpec::leaf(
            "/s2.js",
            ResourceKind::Js,
            15_000,
            Discovery::Static {
                parent: "/index.html".into(),
            },
            ChangeModel::Periodic {
                period: Duration::from_secs(3600),
                phase: Duration::ZERO,
            },
        ),
        policy: HeaderPolicy::NoCache,
    });
    site
}

fn get(path: &str) -> Request {
    Request::get(path).with_header("host", HOST)
}

/// Disk-only store options over `dir` with admit-everything, so every
/// store lands in a segment file and the restart has something to
/// recover.
fn disk_only(dir: &PathBuf) -> StoreOptions {
    StoreOptions::new()
        .mem_budget(0)
        .disk(DiskTierOptions::at(dir).admission(AdmissionPolicy::AdmitAll))
}

/// Fills the disk tier at `dir` via a first edge process: one cold
/// visit of the base page and both subresources at t=0, then drops
/// the edge (an unclean exit writes no shutdown state — recovery works
/// from the segment files alone).
fn fill_and_drop(dir: &PathBuf, origin: &Arc<OriginServer>) {
    let edge = EdgeCache::builder(CountingUpstream::new(SingleOrigin(Arc::clone(origin))))
        .store(disk_only(dir))
        .try_build()
        .expect("disk tier opens");
    for path in ["/index.html", "/s1.css", "/s2.js"] {
        let resp = edge.handle(HOST, &get(path), 0);
        assert_eq!(resp.status, StatusCode::OK, "{path}");
    }
    assert_eq!(edge.upstream().requests(), 3);
    let m = edge.metrics();
    assert_eq!(
        m.disk_objects, 2,
        "both subresources demoted to disk (base HTML is pass-through)"
    );
    assert_eq!(m.admission_rejects, 0);
}

#[test]
fn verified_map_refreshens_recovered_entries_with_zero_upstream() {
    let dir = scratch_dir("verified");
    let origin = Arc::new(OriginServer::new(nocache_site(), HeaderMode::Catalyst));
    fill_and_drop(&dir, &origin);

    // Warm restart: a brand-new edge over the same directory.
    let edge = EdgeCache::builder(CountingUpstream::new(SingleOrigin(Arc::clone(&origin))))
        .store(disk_only(&dir))
        .try_build()
        .expect("recovery scan succeeds");
    let m = edge.metrics();
    assert_eq!(m.disk_recovered, 2, "boot scan rebuilt the index");
    assert_eq!(m.disk_objects, 2);
    assert_eq!(m.disk_recovered_refreshed, 0);

    // The first navigation forwards the base page; its verified map
    // re-freshens the recovered, unchanged s1.css — index-only.
    let t = 7200;
    let nav = edge.handle(HOST, &get("/index.html"), t);
    assert_eq!(nav.status, StatusCode::OK);
    assert_eq!(edge.upstream().requests(), 1, "only the base-HTML forward");
    let m = edge.metrics();
    assert_eq!(m.marks_fresh, 1, "s1.css re-freshened by the map");
    assert_eq!(m.marks_stale, 1, "s2.js churned hourly: map mismatch");
    assert_eq!(
        m.disk_recovered_refreshed, 1,
        "exactly the unchanged recovered entry was re-freshened"
    );

    // The re-freshened entry serves from the segment file with ZERO
    // further origin contact — the zero-RTT warm restart.
    let s1 = edge.handle(HOST, &get("/s1.css"), t);
    assert_eq!(s1.status, StatusCode::OK);
    assert_eq!(
        edge.upstream().requests(),
        1,
        "a map-verified recovered entry must not touch the origin"
    );
    assert_eq!(
        fnv64(&s1.body),
        fnv64(&origin.handle(&get("/s1.css"), t).body),
        "recovered bytes must match the origin's current content"
    );
    assert!(edge.metrics().disk_hits >= 1);

    // The churned entry stays stale and revalidates conditionally:
    // exactly one upstream round, which finds the new body.
    let s2 = edge.handle(HOST, &get("/s2.js"), t);
    assert_eq!(s2.status, StatusCode::OK);
    assert_eq!(edge.upstream().requests(), 2);
    assert_eq!(
        fnv64(&s2.body),
        fnv64(&origin.handle(&get("/s2.js"), t).body)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tampered_map_does_not_refreshen_recovered_entries() {
    let dir = scratch_dir("tampered");
    let origin = Arc::new(OriginServer::new(nocache_site(), HeaderMode::Catalyst));
    fill_and_drop(&dir, &origin);

    // Restart behind an upstream that damages every map in transit.
    let edge = EdgeCache::builder(CountingUpstream::new(TamperingUpstream(SingleOrigin(
        Arc::clone(&origin),
    ))))
    .store(disk_only(&dir))
    .try_build()
    .expect("recovery scan succeeds");
    assert_eq!(edge.metrics().disk_recovered, 2);

    let t = 7200;
    let nav = edge.handle(HOST, &get("/index.html"), t);
    assert_eq!(nav.status, StatusCode::OK);
    let m = edge.metrics();
    assert_eq!(m.tampered_configs, 1);
    assert_eq!(
        m.marks_fresh, 0,
        "a tampered map must not validate anything"
    );
    assert_eq!(
        m.disk_recovered_refreshed, 0,
        "no recovered entry may be re-freshened by a damaged map"
    );

    // Without the map, the recovered (stale) entry must pay one
    // conditional round — which the unchanged origin answers 304, so
    // the stored disk bytes are served, not re-transferred.
    let before = edge.upstream().requests();
    let s1 = edge.handle(HOST, &get("/s1.css"), t);
    assert_eq!(s1.status, StatusCode::OK);
    assert_eq!(edge.upstream().requests(), before + 1);
    assert_eq!(edge.metrics().revalidated_304, 1);
    assert_eq!(
        fnv64(&s1.body),
        fnv64(&origin.handle(&get("/s1.css"), t).body)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovered_entries_are_stale_until_verified() {
    // No navigation, no map: a direct hit on a recovered entry must
    // revalidate conditionally even though it was stored fresh before
    // the restart — freshness claims do not survive a process exit.
    let dir = scratch_dir("stale");
    let origin = Arc::new(OriginServer::new(nocache_site(), HeaderMode::Catalyst));
    fill_and_drop(&dir, &origin);

    let edge = EdgeCache::builder(CountingUpstream::new(SingleOrigin(Arc::clone(&origin))))
        .store(disk_only(&dir))
        .try_build()
        .expect("recovery scan succeeds");

    let t = 30; // well inside what the pre-restart freshness covered
    let s1 = edge.handle(HOST, &get("/s1.css"), t);
    assert_eq!(s1.status, StatusCode::OK);
    assert_eq!(
        edge.upstream().requests(),
        1,
        "a recovered entry is stale: one conditional revalidation"
    );
    assert_eq!(edge.metrics().revalidated_304, 1);
    assert_eq!(
        fnv64(&s1.body),
        fnv64(&origin.handle(&get("/s1.css"), t).body)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
