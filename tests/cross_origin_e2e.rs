//! End-to-end coverage for the cross-origin extension (E9) and the
//! multi-page + capture machinery.

use std::sync::Arc;

use cachecatalyst::prelude::*;
use cachecatalyst::webmodel::Discovery;

#[test]
fn cross_origin_extension_maps_and_serves_third_party() {
    let site = Site::generate(SiteSpec {
        host: "tp.example".into(),
        seed: 512,
        n_resources: 30,
        js_discovered_fraction: 0.0,
        third_party_fraction: 0.4,
        ..Default::default()
    });
    let cdn_host = format!("cdn.{}", site.spec.host);
    let base = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    let cond = NetworkConditions::five_g_median();

    // Paper behaviour: third-party references never mapped.
    let plain = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));
    let resp = plain.handle(&Request::get("/index.html"), 0);
    let config = EtagConfig::from_response(&resp).unwrap();
    assert!(
        !config.iter().any(|(p, _)| p.contains(&cdn_host)),
        "paper mode must skip third-party entries"
    );

    // Extension: third-party entries appear, keyed by full URL.
    let extended =
        Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst).with_cross_origin());
    let resp = extended.handle(&Request::get("/index.html"), 0);
    let config = EtagConfig::from_response(&resp).unwrap();
    let tp_entries: Vec<&str> = config
        .iter()
        .map(|(p, _)| p)
        .filter(|p| p.starts_with("http://"))
        .collect();
    assert!(
        !tp_entries.is_empty(),
        "extension must map third-party URLs"
    );
    assert!(tp_entries.iter().all(|p| p.contains(&cdn_host)));

    // And the browser actually gets SW hits for them on an unchanged
    // revisit (SingleOrigin answers for the CDN host too — the paper's
    // single-server hosting).
    let up = SingleOrigin(extended);
    let mut browser = Browser::catalyst();
    browser.load(&up, cond, &base, 0);
    let warm = browser.load(&up, cond, &base, 60);
    let tp_hits = warm
        .trace
        .fetches
        .iter()
        .filter(|f| f.url.contains(&cdn_host))
        .filter(|f| f.outcome == FetchOutcome::ServiceWorkerHit)
        .count();
    assert!(tp_hits > 0, "{:#?}", warm.trace);
}

#[test]
fn multi_page_visit_uses_shared_chrome() {
    let site = Site::generate(SiteSpec {
        host: "pages.example".into(),
        seed: 99,
        n_resources: 40,
        js_discovered_fraction: 0.0,
        n_pages: 3,
        ..Default::default()
    });
    let cond = NetworkConditions::five_g_median();
    let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));
    let up = SingleOrigin(origin);

    let mut browser = Browser::catalyst();
    let pages = site.pages();
    let landing = browser.load(
        &up,
        cond,
        &Url::parse(&format!("http://{}{}", site.spec.host, pages[0])).unwrap(),
        0,
    );
    let click = browser.load(
        &up,
        cond,
        &Url::parse(&format!("http://{}{}", site.spec.host, pages[1])).unwrap(),
        10,
    );
    assert!(click.sw_hits > 0, "chrome must be served by the SW");
    assert!(click.plt < landing.plt);
    assert!(click.network_requests() < landing.network_requests());
}

#[test]
fn capture_covers_js_resources_per_page() {
    // Multi-page + session capture: each page's map learns its own
    // JS-discovered resources via the Referer-keyed recording.
    let site = Site::generate(SiteSpec {
        host: "cap.example".into(),
        seed: 1337,
        n_resources: 40,
        js_discovered_fraction: 0.25,
        ..Default::default()
    });
    let dynamic_paths: Vec<String> = site
        .resources()
        .filter(|r| matches!(r.spec.discovery, Discovery::JsExecution { .. }))
        .map(|r| r.spec.path.clone())
        .collect();
    assert!(!dynamic_paths.is_empty());

    let cond = NetworkConditions::five_g_median();
    let origin = Arc::new(OriginServer::new(
        site.clone(),
        HeaderMode::CatalystWithCapture,
    ));
    let up = SingleOrigin(origin);
    let base = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    let mut browser = Browser::new(EngineConfig {
        use_http_cache: false,
        use_service_worker: true,
        session: Some("user-1".into()),
        ..Default::default()
    });
    browser.load(&up, cond, &base, 0);
    // Unchanged revisit after a minute: everything captured must now be
    // SW-served, including JS-discovered resources that are unchanged.
    let warm = browser.load(&up, cond, &base, 60);
    let dynamic_sw_hits = warm
        .trace
        .fetches
        .iter()
        .filter(|f| {
            let path = Url::parse(&f.url).unwrap().path().to_owned();
            dynamic_paths.contains(&path) && f.outcome == FetchOutcome::ServiceWorkerHit
        })
        .count();
    // Expect a hit for every unchanged dynamic the SW was allowed to
    // store (no-store resources are mapped but never cached — §3).
    let unchanged_dynamics = dynamic_paths
        .iter()
        .filter(|p| site.version_at(p, 0) == site.version_at(p, 60))
        .filter(|p| site.get(p).unwrap().policy.allows_store())
        .count();
    assert_eq!(dynamic_sw_hits, unchanged_dynamics, "{:#?}", warm.trace);
}
