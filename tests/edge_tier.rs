//! Integration: the catalyst-aware edge-cache tier.
//!
//! Proves the PR-5 acceptance properties end to end: single-flight
//! coalescing (N concurrent misses → exactly one upstream fetch),
//! catalyst-map-driven freshness (revisits serve unchanged
//! subresources with zero upstream revalidations and churned ones
//! with exactly one), negative caching, byte-budget eviction, fault
//! tolerance (a damaged upstream response never poisons the shared
//! store), and the TCP front end.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use cachecatalyst::browser::ClientOptions;
use cachecatalyst::catalyst::tamper_config_headers;
use cachecatalyst::edge::{EdgeCache, TcpEdge};
use cachecatalyst::httpwire::tracectx;
use cachecatalyst::netsim::FaultPlan;
use cachecatalyst::prelude::*;
use cachecatalyst::proxies::FaultyUpstream;
use cachecatalyst::telemetry::span::{Sampling, SpanId, SpanSink, TraceContext, TraceId};
use cachecatalyst::telemetry::{Event, MemoryRecorder};
use cachecatalyst::webmodel::{
    ChangeModel, Discovery, GeneratedResource, HeaderPolicy, ResourceKind, ResourceSpec,
};

/// FNV-1a, the digest the serve-correct-bytes oracle compares.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Counts every request that reaches the wrapped upstream — an
/// upstream-side witness independent of the edge's own counters.
struct CountingUpstream<U> {
    inner: U,
    requests: AtomicU64,
}

impl<U: Upstream> CountingUpstream<U> {
    fn new(inner: U) -> CountingUpstream<U> {
        CountingUpstream {
            inner,
            requests: AtomicU64::new(0),
        }
    }

    fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }
}

impl<U: Upstream> Upstream for CountingUpstream<U> {
    fn handle(&self, host: &str, req: &Request, t_secs: i64) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.inner.handle(host, req, t_secs)
    }
}

/// Damages the config map of every base-HTML response in transit
/// (without re-signing), as PR 4's chaos schedules do.
struct TamperingUpstream<U>(U);

impl<U: Upstream> Upstream for TamperingUpstream<U> {
    fn handle(&self, host: &str, req: &Request, t_secs: i64) -> Response {
        let mut resp = self.0.handle(host, req, t_secs);
        tamper_config_headers(&mut resp, Some(0xBAD));
        resp
    }
}

const HOST: &str = "edge-test.example";

/// A hand-built site whose every resource is `no-cache`, so classic
/// freshness never masks the catalyst mechanism: without the map, the
/// edge must revalidate everything; with it, unchanged subresources
/// need zero upstream contact.
fn nocache_site() -> Site {
    let mut site = Site::generate(SiteSpec {
        host: HOST.to_owned(),
        seed: 0xED61,
        n_resources: 0,
        ..Default::default()
    });
    let mut index = ResourceSpec::leaf(
        "/index.html",
        ResourceKind::Html,
        10_000,
        Discovery::Base,
        ChangeModel::Periodic {
            period: Duration::from_secs(90 * 60),
            phase: Duration::ZERO,
        },
    );
    index.static_children = vec!["/s1.css".to_owned(), "/s2.js".to_owned()];
    site.insert_resource(GeneratedResource {
        spec: index,
        policy: HeaderPolicy::NoCache,
    });
    // s1.css: changes monthly — unchanged at the +2h revisit.
    site.insert_resource(GeneratedResource {
        spec: ResourceSpec::leaf(
            "/s1.css",
            ResourceKind::Css,
            20_000,
            Discovery::Static {
                parent: "/index.html".into(),
            },
            ChangeModel::Periodic {
                period: Duration::from_secs(30 * 24 * 3600),
                phase: Duration::ZERO,
            },
        ),
        policy: HeaderPolicy::NoCache,
    });
    // s2.js: changes hourly — churned at the +2h revisit.
    site.insert_resource(GeneratedResource {
        spec: ResourceSpec::leaf(
            "/s2.js",
            ResourceKind::Js,
            15_000,
            Discovery::Static {
                parent: "/index.html".into(),
            },
            ChangeModel::Periodic {
                period: Duration::from_secs(3600),
                phase: Duration::ZERO,
            },
        ),
        policy: HeaderPolicy::NoCache,
    });
    site
}

fn get(path: &str) -> Request {
    Request::get(path).with_header("host", HOST)
}

#[test]
fn eight_concurrent_misses_cost_exactly_one_upstream_fetch() {
    const THREADS: usize = 8;
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let upstream = CountingUpstream::new(SingleOrigin(origin));
    let edge = EdgeCache::builder(upstream).build();
    let barrier = Barrier::new(THREADS);

    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (edge, barrier) = (&edge, &barrier);
                scope.spawn(move || {
                    barrier.wait();
                    let resp = edge.handle("example.org", &Request::get("/a.css"), 0);
                    assert_eq!(resp.status, StatusCode::OK);
                    fnv64(&resp.body)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // The upstream-side witness: one fetch, full stop.
    assert_eq!(
        edge.upstream().requests(),
        1,
        "single-flight must collapse 8 concurrent misses into 1 fetch"
    );
    let m = edge.metrics();
    assert_eq!(m.upstream_requests, 1);
    assert_eq!(m.requests, THREADS as u64);
    assert_eq!(m.misses, 1);
    assert_eq!(m.hits, THREADS as u64 - 1);
    // Every requester got byte-identical content.
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "all coalesced responses must be digest-identical: {digests:?}"
    );
}

#[test]
fn catalyst_map_validates_unchanged_subresources_with_zero_upstream() {
    let origin = Arc::new(OriginServer::new(nocache_site(), HeaderMode::Catalyst));
    let edge = EdgeCache::builder(CountingUpstream::new(SingleOrigin(Arc::clone(&origin)))).build();

    // Cold visit: base page (pass-through; maps are applied but both
    // subresources are absent) plus both subresources.
    for path in ["/index.html", "/s1.css", "/s2.js"] {
        let resp = edge.handle(HOST, &get(path), 0);
        assert_eq!(resp.status, StatusCode::OK, "{path}");
    }
    assert_eq!(edge.upstream().requests(), 3);

    // Revisit two hours later. The base-HTML forward carries the new
    // map: s1.css is unchanged (marked fresh), s2.js churned (marked
    // stale).
    let t = 7200;
    let nav = edge.handle(HOST, &get("/index.html"), t);
    assert_eq!(nav.status, StatusCode::OK);
    assert!(nav.headers.get("x-etag-config").is_some());
    assert_eq!(edge.upstream().requests(), 4);
    let m = edge.metrics();
    assert_eq!(m.marks_fresh, 1, "s1.css validated by the map");
    assert_eq!(m.marks_stale, 1, "s2.js invalidated by the map");

    // s1.css: served from the edge with ZERO further upstream contact,
    // even though its policy is no-cache — the map already spoke.
    let s1 = edge.handle(HOST, &get("/s1.css"), t);
    assert_eq!(s1.status, StatusCode::OK);
    assert_eq!(s1.headers.get("x-served-by"), Some("cachecatalyst-edge"));
    assert_eq!(
        edge.upstream().requests(),
        4,
        "the marked-fresh subresource must not touch the origin"
    );
    assert_eq!(
        fnv64(&s1.body),
        fnv64(&origin.handle(&get("/s1.css"), t).body)
    );

    // s2.js: exactly one conditional revalidation, which finds the
    // churned body.
    let before = edge.upstream().requests();
    let s2 = edge.handle(HOST, &get("/s2.js"), t);
    assert_eq!(s2.status, StatusCode::OK);
    assert_eq!(edge.upstream().requests(), before + 1);
    assert_eq!(
        fnv64(&s2.body),
        fnv64(&origin.handle(&get("/s2.js"), t).body)
    );
    assert_eq!(edge.metrics().revalidated_changed, 1);

    // And a second request for s2 at the same instant coalesces onto
    // the just-stored version: no more upstream traffic.
    let again = edge.handle(HOST, &get("/s2.js"), t);
    assert_eq!(fnv64(&again.body), fnv64(&s2.body));
    assert_eq!(edge.upstream().requests(), before + 1);
}

#[test]
fn stale_entries_revalidate_with_a_conditional_get() {
    let origin = Arc::new(OriginServer::new(nocache_site(), HeaderMode::Catalyst));
    let edge = EdgeCache::builder(CountingUpstream::new(SingleOrigin(origin))).build();

    let first = edge.handle(HOST, &get("/s1.css"), 0);
    assert_eq!(first.status, StatusCode::OK);
    // Past the debounce, same content: the edge revalidates with the
    // stored validator and the origin answers 304 — the stored body is
    // served again, not re-transferred.
    let later = edge.handle(HOST, &get("/s1.css"), 60);
    assert_eq!(later.status, StatusCode::OK);
    assert_eq!(fnv64(&later.body), fnv64(&first.body));
    let m = edge.metrics();
    assert_eq!(m.revalidated_304, 1);
    assert_eq!(m.revalidated_changed, 0);
}

#[test]
fn client_conditionals_are_answered_locally() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let edge = EdgeCache::builder(CountingUpstream::new(SingleOrigin(origin))).build();

    let first = edge.handle("example.org", &Request::get("/a.css"), 0);
    let tag = first.etag().expect("validator").to_string();
    let upstream_after_fill = edge.upstream().requests();

    // A client revisiting with the matching validator gets a 304
    // minted by the edge itself — no upstream contact.
    let conditional = Request::get("/a.css").with_header("if-none-match", &tag);
    let resp = edge.handle("example.org", &conditional, 0);
    assert_eq!(resp.status, StatusCode::NOT_MODIFIED);
    assert!(resp.body.is_empty());
    assert_eq!(edge.upstream().requests(), upstream_after_fill);
}

#[test]
fn tampered_config_maps_are_distrusted() {
    // Two edges over the same site: one whose upstream damages every
    // config map in transit, one clean. The clean edge validates via
    // the map; the tampered edge must fall back to conditional GETs.
    let origin = Arc::new(OriginServer::new(nocache_site(), HeaderMode::Catalyst));
    let tampered = EdgeCache::builder(CountingUpstream::new(TamperingUpstream(SingleOrigin(
        Arc::clone(&origin),
    ))))
    .build();
    let clean = EdgeCache::builder(CountingUpstream::new(SingleOrigin(origin))).build();

    // Fill both stores with s1.css, then forward the base page.
    tampered.handle(HOST, &get("/s1.css"), 0);
    clean.handle(HOST, &get("/s1.css"), 0);
    tampered.handle(HOST, &get("/index.html"), 10);
    clean.handle(HOST, &get("/index.html"), 10);

    assert_eq!(clean.metrics().marks_fresh, 1);
    assert_eq!(clean.metrics().tampered_configs, 0);
    assert_eq!(
        tampered.metrics().marks_fresh,
        0,
        "a tampered map must not validate anything"
    );
    assert_eq!(tampered.metrics().tampered_configs, 1);

    // Clean edge: s1 serves with zero further upstream contact.
    let before = clean.upstream().requests();
    clean.handle(HOST, &get("/s1.css"), 10);
    assert_eq!(clean.upstream().requests(), before);

    // Tampered edge: s1 must revalidate conditionally instead of
    // trusting the damaged map — one upstream round, served via 304.
    let before = tampered.upstream().requests();
    let resp = tampered.handle(HOST, &get("/s1.css"), 10);
    assert_eq!(resp.status, StatusCode::OK);
    assert_eq!(tampered.upstream().requests(), before + 1);
    assert_eq!(tampered.metrics().revalidated_304, 1);
}

#[test]
fn faulted_upstream_responses_never_poison_the_store() {
    // DST-style sweep: aggressive fault schedules between the edge and
    // the origin. Invariant (the serve-correct-bytes oracle): every
    // 200 the edge serves is digest-identical to the clean origin's
    // body for that path and instant — a truncated/corrupted/faulted
    // upstream leg may surface errors to the requesting client, but
    // must never leave damaged bytes in the shared store.
    let reference = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let paths = ["/a.css", "/b.js", "/c.js", "/d.jpg"];
    // All content versions are constant for t < 5400 (one churn
    // epoch), so references at the same t are stable.
    let times = [0i64, 2, 4, 60, 120];

    for seed in 1..=40u64 {
        let plan = FaultPlan::new(seed)
            .with_fault_rate(0.6)
            .with_max_consecutive(3);
        let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
        let edge = EdgeCache::builder(FaultyUpstream::new(SingleOrigin(origin), plan)).build();
        let mut served_ok = 0u64;
        for &t in &times {
            for path in paths {
                for _attempt in 0..2 {
                    let resp = edge.handle(HOST, &get(path), t);
                    if resp.status == StatusCode::OK {
                        served_ok += 1;
                        let want = fnv64(&reference.handle(&get(path), t).body);
                        assert_eq!(
                            fnv64(&resp.body),
                            want,
                            "seed {seed}: {path}@{t} served corrupt bytes"
                        );
                    } else {
                        // Faulted legs surface as tagged 5xx — never a
                        // silent wrong body.
                        assert!(
                            resp.status.is_server_error(),
                            "seed {seed}: unexpected {}",
                            resp.status
                        );
                        assert!(resp.headers.get("x-cc-fault").is_some());
                    }
                }
            }
        }
        assert!(served_ok > 0, "seed {seed}: nothing served at all");
    }
}

#[test]
fn negative_caching_absorbs_repeated_404s() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let edge = EdgeCache::builder(CountingUpstream::new(SingleOrigin(origin)))
        .negative_ttl_secs(5)
        .build();

    let first = edge.handle("example.org", &Request::get("/no-such-file"), 0);
    assert_eq!(first.status, StatusCode::NOT_FOUND);
    assert_eq!(edge.upstream().requests(), 1);

    // Within the negative TTL the 404 is served from the edge.
    let second = edge.handle("example.org", &Request::get("/no-such-file"), 2);
    assert_eq!(second.status, StatusCode::NOT_FOUND);
    assert_eq!(edge.upstream().requests(), 1);
    assert_eq!(edge.metrics().negative_hits, 1);

    // Past it, the edge re-asks the origin.
    let third = edge.handle("example.org", &Request::get("/no-such-file"), 6);
    assert_eq!(third.status, StatusCode::NOT_FOUND);
    assert_eq!(edge.upstream().requests(), 2);
}

#[test]
fn byte_budget_forces_lru_eviction() {
    let site = Site::generate(SiteSpec {
        host: HOST.to_owned(),
        seed: 77,
        n_resources: 40,
        ..Default::default()
    });
    let paths: Vec<String> = site
        .resources()
        .filter(|r| r.spec.kind != ResourceKind::Html)
        .map(|r| r.spec.path.clone())
        .collect();
    let origin = Arc::new(OriginServer::new(site, HeaderMode::Catalyst));
    let budget = 128 << 10;
    let edge = EdgeCache::builder(SingleOrigin(origin))
        .byte_budget(budget)
        .shards(2)
        .build();

    for path in &paths {
        edge.handle(HOST, &get(path), 0);
    }
    let m = edge.metrics();
    assert!(m.evictions > 0, "the working set must overflow the budget");
    assert!(
        m.bytes_held <= budget as u64,
        "held {} > budget {budget}",
        m.bytes_held
    );
    assert!(edge.stored_objects() > 0);
}

#[test]
fn audits_and_metrics_flow_through_client_options() {
    let recorder = Arc::new(MemoryRecorder::new());
    let spans = Arc::new(SpanSink::new(Sampling::Always));
    let opts = ClientOptions::new()
        .recorder(recorder.clone())
        .span_sink(spans.clone());
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let edge = EdgeCache::builder(SingleOrigin(origin))
        .client_options(&opts)
        .build();

    // A traced request: the edge must re-parent its hop onto the
    // incoming context.
    let parent = SpanId::next();
    let ctx = TraceContext::new(TraceId::next(), parent).at(0.0);
    let mut req = Request::get("/a.css");
    tracectx::inject(&mut req, &ctx);
    edge.handle("example.org", &req, 0);
    edge.handle("example.org", &req, 0);

    let events = recorder.take();
    let decisions: Vec<String> = events
        .iter()
        .filter_map(|e| match e {
            Event::CacheDecision { audit, .. } => Some(audit.decision.as_str().to_owned()),
            _ => None,
        })
        .collect();
    assert_eq!(
        decisions,
        vec!["full-fetch".to_owned(), "edge-hit".to_owned()]
    );

    let recorded = spans.drain();
    assert_eq!(recorded.len(), 2);
    for span in recorded {
        assert_eq!(span.name, "edge.serve");
        assert_eq!(span.parent, Some(parent));
        assert_eq!(span.trace_id, ctx.trace_id);
    }

    // The Prometheus surface carries the same story.
    let text = edge.telemetry().render_prometheus();
    assert!(text.contains("edge_requests_total 2"));
    assert!(text.contains("edge_hits_total 1"));
    assert!(text.contains("edge_misses_total 1"));
    assert!(text.contains("edge_upstream_requests_total 1"));
    assert!(text.contains("edge_store_bytes"));
}

#[tokio::test]
async fn tcp_edge_serves_cached_bytes_end_to_end() {
    use cachecatalyst::httpwire::aio::ClientConn;
    use cachecatalyst::origin::fixed_clock;
    use tokio::net::TcpStream;

    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let edge = Arc::new(EdgeCache::builder(SingleOrigin(origin)).build());
    let server = TcpEdge::bind("127.0.0.1:0", Arc::clone(&edge), fixed_clock(0))
        .await
        .expect("bind");

    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    let first = conn
        .round_trip(&Request::get("/a.css").with_header("host", "example.org"))
        .await
        .unwrap();
    assert_eq!(first.status, StatusCode::OK);
    let second = conn
        .round_trip(&Request::get("/a.css").with_header("host", "example.org"))
        .await
        .unwrap();
    assert_eq!(second.status, StatusCode::OK);
    assert_eq!(
        second.headers.get("x-served-by"),
        Some("cachecatalyst-edge")
    );
    assert_eq!(fnv64(&first.body), fnv64(&second.body));
    assert!(edge.metrics().hits >= 1, "second fetch must hit the store");

    // Requests without a Host header are rejected, not crashed on.
    let bad = conn.round_trip(&Request::get("/a.css")).await.unwrap();
    assert_eq!(bad.status, StatusCode::BAD_REQUEST);
    server.shutdown().await;
}
