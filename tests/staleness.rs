//! Integration: correctness of what reaches the page.
//!
//! The paper's mechanism must never serve stale content: a resource is
//! reused only when its ETag matches the server's *current* token. The
//! status quo, by contrast, knowingly serves TTL-fresh-but-changed
//! content. These tests verify both sides of that contrast by reading
//! the version markers embedded in every generated body.

use std::sync::Arc;

use cachecatalyst::httpcache::CacheMetrics;
use cachecatalyst::prelude::*;
use cachecatalyst::telemetry::CacheDecision;

fn version_marker(body: &[u8]) -> Option<u64> {
    // Text bodies carry "… v{N} …", binary bodies "BIN:…:v{N}\n".
    let text = String::from_utf8_lossy(body);
    let idx = text.find(":v").map(|i| i + 2).or_else(|| {
        text.find(" v").and_then(|i| {
            text[i + 2..]
                .chars()
                .next()
                .filter(char::is_ascii_digit)
                .map(|_| i + 2)
        })
    })?;
    let digits: String = text[idx..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Drives two visits and returns, for every resource the page used,
/// `(path, delivered_version, server_version_at_revisit)`.
fn delivered_versions(
    site: &Site,
    mode: HeaderMode,
    mut browser: Browser,
    t0: i64,
    t1: i64,
) -> Vec<(String, u64, u64)> {
    let origin = Arc::new(OriginServer::new(site.clone(), mode));
    let up = SingleOrigin(Arc::clone(&origin));
    let url = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    browser.load(&up, NetworkConditions::five_g_median(), &url, t0);
    let warm = browser.load(&up, NetworkConditions::five_g_median(), &url, t1);

    let mut out = Vec::new();
    for fetch in &warm.trace.fetches {
        let path = Url::parse(&fetch.url).unwrap().path().to_owned();
        let Some(current) = site.version_at(&path, t1) else {
            continue;
        };
        // Recover what the page actually displayed: refetch through
        // the same machinery state? The trace doesn't carry bodies, so
        // reconstruct via outcome semantics.
        let displayed = match fetch.outcome {
            // Full transfers and pushes carry the server-current body.
            FetchOutcome::FullTransfer | FetchOutcome::Pushed => current,
            // 304 means the validator matched the current version.
            FetchOutcome::NotModified => current,
            // Cache/SW hits display the version stored at t0.
            FetchOutcome::CacheHit | FetchOutcome::ServiceWorkerHit => {
                site.version_at(&path, t0).unwrap()
            }
        };
        out.push((path, displayed, current));
    }
    out
}

#[test]
fn catalyst_never_serves_stale() {
    let sites = generate_corpus(&CorpusSpec {
        n_sites: 6,
        resources_median: 40.0,
        ..Default::default()
    });
    let t0: i64 = 35 * 86_400;
    for site in &sites {
        for delta in [60i64, 3600, 86_400, 7 * 86_400] {
            let rows = delivered_versions(
                site,
                HeaderMode::Catalyst,
                Browser::catalyst(),
                t0,
                t0 + delta,
            );
            for (path, displayed, current) in rows {
                assert_eq!(
                    displayed, current,
                    "{}: {path} displayed v{displayed}, server has v{current} (Δ={delta}s)",
                    site.spec.host
                );
            }
        }
    }
}

#[test]
fn baseline_does_serve_stale_sometimes() {
    // The flip side (and part of the paper's motivation): TTLs that
    // outlive the content make the status quo show outdated versions.
    let sites = generate_corpus(&CorpusSpec {
        n_sites: 10,
        resources_median: 50.0,
        ..Default::default()
    });
    let t0: i64 = 35 * 86_400;
    let mut stale_seen = 0;
    for site in &sites {
        let rows = delivered_versions(
            site,
            HeaderMode::Baseline,
            Browser::baseline(),
            t0,
            t0 + 7 * 86_400,
        );
        stale_seen += rows.iter().filter(|(_, d, c)| d != c).count();
    }
    assert!(
        stale_seen > 0,
        "expected the status quo to serve at least one stale resource over \
         10 sites × 1-week revisit"
    );
}

/// The audit trail and the cache's own counters describe the same
/// load from two independent vantage points — the engine's per-fetch
/// verdicts vs. the `HttpCache`'s internal bookkeeping. Reconcile
/// them exactly: any drift means one of the two is lying about what
/// the load did.
#[test]
fn audit_decisions_reconcile_with_cache_metric_deltas() {
    let sites = generate_corpus(&CorpusSpec {
        n_sites: 4,
        resources_median: 30.0,
        ..Default::default()
    });
    let t0: i64 = 35 * 86_400;
    let cond = NetworkConditions::five_g_median();
    for site in &sites {
        let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Baseline));
        let up = SingleOrigin(Arc::clone(&origin));
        let url = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
        let mut browser = Browser::baseline();
        for t in [t0, t0 + 3600, t0 + 86_400, t0 + 8 * 86_400] {
            let before = browser.cache.metrics;
            let report = browser.load(&up, cond, &url, t);
            let delta = browser.cache.metrics.delta_since(&before);
            let ctx = format!("{} at t={t}", site.spec.host);

            let count =
                |d: CacheDecision| report.audits.iter().filter(|a| a.decision == d).count() as u64;
            assert_eq!(
                report.audits.len(),
                report.trace.fetches.len(),
                "{ctx}: audit trail incomplete"
            );
            assert_eq!(count(CacheDecision::SwHitZeroRtt), 0, "{ctx}: no SW here");
            assert_eq!(count(CacheDecision::Degraded), 0, "{ctx}: no faults here");

            // Every foreground fetch does exactly one cache lookup;
            // SWR background revalidations bypass lookup entirely.
            let swr = report.swr_served as u64;
            assert_eq!(
                delta.lookups(),
                report.audits.len() as u64 - swr,
                "{ctx}: lookups vs fetches"
            );
            // A Bypass audit is a cache serve: either a fresh hit or a
            // stale copy served under stale-while-revalidate.
            assert_eq!(
                delta.fresh_hits,
                count(CacheDecision::Bypass) - swr,
                "{ctx}: fresh hits vs bypass audits"
            );
            assert!(
                delta.stale_hits >= swr,
                "{ctx}: every SWR serve starts as a stale lookup"
            );
            // Every 304 — foreground conditional or background SWR
            // refresh — lands as exactly one revalidation refresh.
            assert_eq!(
                delta.revalidation_refreshes,
                count(CacheDecision::Conditional304),
                "{ctx}: refreshes vs 304 audits"
            );
            // Every storable full transfer is stored; no-store
            // resources (the corpus has ~12%) are fetched but not.
            let storable_fulls = report
                .audits
                .iter()
                .filter(|a| a.decision == CacheDecision::FullFetch)
                .filter(|a| {
                    let path = Url::parse(&a.url).unwrap().path().to_owned();
                    let resp = origin.handle(&Request::get(&path), t);
                    HttpCache::is_storable(&Request::get(&path), &resp)
                })
                .count() as u64;
            assert_eq!(
                delta.stores, storable_fulls,
                "{ctx}: stores vs full fetches"
            );
            assert_eq!(delta.evictions, 0, "{ctx}: unbounded cache never evicts");
        }

        // The catalyst browser resolves everything through the service
        // worker: the classic HTTP cache must stay completely silent.
        let mut catalyst = Browser::catalyst();
        for t in [t0, t0 + 3600, t0 + 86_400] {
            let before = catalyst.cache.metrics;
            catalyst.load(&up, cond, &url, t);
            assert_eq!(
                catalyst.cache.metrics.delta_since(&before),
                CacheMetrics::default(),
                "{}: catalyst load touched the HTTP cache",
                site.spec.host
            );
        }
    }
}

#[test]
fn version_markers_are_readable() {
    // Sanity for the helper itself.
    let site = example_site();
    let body = site.body_at("/a.css", 0).unwrap();
    assert_eq!(version_marker(&body), Some(0));
    let changed = site.body_at("/d.jpg", 7200).unwrap();
    assert_eq!(version_marker(&changed), Some(1));
}
