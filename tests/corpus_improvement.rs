//! Integration: the headline result holds on a corpus slice — the
//! *shape* of Figure 3, not its absolute numbers.

use std::sync::Arc;
use std::time::Duration;

use cachecatalyst::prelude::*;

fn corpus(n: usize) -> Vec<Site> {
    generate_corpus(&CorpusSpec {
        n_sites: n,
        resources_median: 40.0,
        ..Default::default()
    })
}

fn mean_improvement(sites: &[Site], cond: NetworkConditions, delay: Duration) -> f64 {
    let mut base_plt = 0.0;
    let mut cat_plt = 0.0;
    for site in sites {
        let url = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
        let t0: i64 = 35 * 86_400;
        let t1 = t0 + delay.as_secs() as i64;

        let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Baseline));
        let up = SingleOrigin(origin);
        let mut b = Browser::baseline();
        b.load(&up, cond, &url, t0);
        base_plt += b.load(&up, cond, &url, t1).plt_ms();

        let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));
        let up = SingleOrigin(origin);
        let mut c = Browser::catalyst();
        c.load(&up, cond, &url, t0);
        cat_plt += c.load(&up, cond, &url, t1).plt_ms();
    }
    (base_plt - cat_plt) / base_plt * 100.0
}

#[test]
fn headline_improvement_at_5g_median() {
    let sites = corpus(8);
    let improvement = mean_improvement(
        &sites,
        NetworkConditions::five_g_median(),
        Duration::from_secs(3600),
    );
    // Paper: ~30% average. Shape check: solidly double digit.
    assert!(
        (15.0..=55.0).contains(&improvement),
        "improvement {improvement}%"
    );
}

#[test]
fn improvement_grows_with_latency_at_fixed_throughput() {
    let sites = corpus(8);
    let delay = Duration::from_secs(6 * 3600);
    let low = mean_improvement(
        &sites,
        NetworkConditions::new(Duration::from_millis(10), 60_000_000),
        delay,
    );
    let high = mean_improvement(
        &sites,
        NetworkConditions::new(Duration::from_millis(120), 60_000_000),
        delay,
    );
    assert!(high > low, "low-rtt {low}% vs high-rtt {high}%");
}

#[test]
fn improvement_grows_with_throughput_at_fixed_latency() {
    // The paper's key observation: at 8 Mbps the bottleneck is
    // transmission, so removing RTTs barely helps; at 60 Mbps latency
    // dominates and the mechanism shines.
    let sites = corpus(8);
    let delay = Duration::from_secs(6 * 3600);
    let rtt = Duration::from_millis(40);
    let slow = mean_improvement(&sites, NetworkConditions::new(rtt, 8_000_000), delay);
    let fast = mean_improvement(&sites, NetworkConditions::new(rtt, 60_000_000), delay);
    assert!(fast > slow + 5.0, "8 Mbps {slow}% vs 60 Mbps {fast}%");
}

#[test]
fn little_gain_where_bandwidth_is_the_bottleneck() {
    let sites = corpus(8);
    let improvement = mean_improvement(
        &sites,
        NetworkConditions::new(Duration::from_millis(10), 8_000_000),
        Duration::from_secs(3600),
    );
    assert!(
        improvement.abs() < 12.0,
        "8 Mbps / 10 ms should be near-neutral, got {improvement}%"
    );
}

#[test]
fn catalyst_never_issues_more_round_trips_than_it_saves() {
    // Request accounting: warm catalyst visits must use no more
    // network round trips than the baseline on the same site/delay.
    let sites = corpus(4);
    let cond = NetworkConditions::five_g_median();
    for site in &sites {
        let url = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
        let t0: i64 = 35 * 86_400;
        let t1 = t0 + 3600;

        let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Baseline));
        let up = SingleOrigin(origin);
        let mut b = Browser::baseline();
        b.load(&up, cond, &url, t0);
        let baseline = b.load(&up, cond, &url, t1);

        let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));
        let up = SingleOrigin(origin);
        let mut c = Browser::catalyst();
        c.load(&up, cond, &url, t0);
        let catalyst = c.load(&up, cond, &url, t1);

        assert!(
            catalyst.network_requests() <= baseline.network_requests(),
            "site {}: catalyst {} vs baseline {} requests",
            site.spec.host,
            catalyst.network_requests(),
            baseline.network_requests()
        );
    }
}
