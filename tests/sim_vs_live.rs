//! E15 — cross-validation: the discrete-event simulator's prediction
//! vs an actual protocol execution over emulated links.
//!
//! The same site, the same network conditions, the same serving mode:
//! once through `Browser` (virtual time) and once through
//! `LiveBrowser` (wall-clock tokio over `netsim::emu` links). The two
//! implementations share the protocol code but not the timing engine,
//! so agreement here validates the simulator the evaluation rests on.

use std::sync::Arc;

use cachecatalyst::browser::live::{Dialer, LiveBrowser, LiveMode};
use cachecatalyst::chaos::{live_slack_ms, within_band};
use cachecatalyst::netsim::emu::emulated_link;
use cachecatalyst::origin::{fixed_clock, TcpOrigin};
use cachecatalyst::prelude::*;

fn dialer_for(origin: Arc<OriginServer>, cond: NetworkConditions, t_secs: i64) -> Dialer {
    Arc::new(move |_host: String| {
        let origin = Arc::clone(&origin);
        Box::pin(async move {
            let (client_end, server_end) = emulated_link(cond);
            let opts = TcpOrigin::builder()
                .server(origin)
                .clock(fixed_clock(t_secs));
            tokio::spawn(async move {
                let _ = opts.serve_stream(server_end).await;
            });
            // TCP connection establishment: one round trip before the
            // stream is usable (the simulator charges the same).
            tokio::time::sleep(cond.rtt).await;
            Ok(Box::new(client_end) as Box<dyn cachecatalyst::browser::live::ByteStream>)
        })
    })
}

// Tolerance: the live path has real scheduler jitter, TCP buffering
// and pump-task granularity the simulator abstracts away. Agreement
// is asserted with `chaos::within_band` — a relative band for the
// real timing divergence plus `chaos::live_slack_ms` of absolute
// slack for per-await scheduler noise (the offline tokio stand-in
// re-polls IO readiness every ~250 µs, which a pure ratio check
// turns into flakes on fast loads).

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn cold_load_times_agree() {
    let cond = NetworkConditions::five_g_median();
    let base = Url::parse("http://example.org/index.html").unwrap();

    // Simulated prediction.
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let sim = Browser::uncached().load(&SingleOrigin(Arc::clone(&origin)), cond, &base, 0);

    // Live execution over emulated links.
    let mut live = LiveBrowser::new(dialer_for(origin, cond, 0), LiveMode::Uncached);
    let live_report = live.load(&base).await.unwrap();

    let sim_ms = sim.plt_ms();
    let live_ms = live_report.plt.as_secs_f64() * 1000.0;
    assert_eq!(live_report.trace.fetches.len(), sim.trace.fetches.len());
    assert_eq!(live_report.network_requests, sim.network_requests());
    assert!(
        within_band(
            live_ms,
            sim_ms,
            0.25,
            live_slack_ms(sim.trace.fetches.len())
        ),
        "sim predicted {sim_ms:.1} ms, live measured {live_ms:.1} ms"
    );
}

#[tokio::test(flavor = "multi_thread", worker_threads = 4)]
async fn catalyst_revisit_agrees_and_preserves_the_win() {
    let cond = NetworkConditions::five_g_median();
    let base = Url::parse("http://example.org/index.html").unwrap();
    let t1 = 7200i64;

    // --- simulated: baseline vs catalyst warm visits ---
    let origin_b = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let mut b = Browser::baseline();
    b.load(&SingleOrigin(Arc::clone(&origin_b)), cond, &base, 0);
    let sim_base = b.load(&SingleOrigin(Arc::clone(&origin_b)), cond, &base, t1);

    let origin_c = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let mut c = Browser::catalyst();
    c.load(&SingleOrigin(Arc::clone(&origin_c)), cond, &base, 0);
    let sim_cat = c.load(&SingleOrigin(Arc::clone(&origin_c)), cond, &base, t1);

    // --- live: same protocol over emulated links ---
    let mut live_b = LiveBrowser::new(
        dialer_for(Arc::clone(&origin_b), cond, 0),
        LiveMode::Baseline,
    );
    live_b.load(&base).await.unwrap();
    // Reconnect at the revisit time (the old links embed t=0).
    let mut live_b = live_b.with_dialer(dialer_for(origin_b, cond, t1));
    live_b.now_secs = t1;
    let live_base = live_b.load(&base).await.unwrap();

    let mut live_c = LiveBrowser::new(
        dialer_for(Arc::clone(&origin_c), cond, 0),
        LiveMode::Catalyst,
    );
    live_c.load(&base).await.unwrap();
    let mut live_c = live_c.with_dialer(dialer_for(origin_c, cond, t1));
    live_c.now_secs = t1;
    let live_cat = live_c.load(&base).await.unwrap();

    // Catalyst's zero-RTT serving must survive contact with real IO.
    // On this page the critical path runs through the JS-discovered
    // chain, so the simulator predicts a near-tie for plain catalyst
    // (see `plain_catalyst_ties_baseline_when_js_chain_dominates`);
    // the live run must reproduce that: no worse than a few percent.
    assert!(live_cat.sw_hits >= 2, "{live_cat:?}");
    let cat_ms = live_cat.plt.as_secs_f64() * 1000.0;
    let base_ms = live_base.plt.as_secs_f64() * 1000.0;
    // "No worse than a few percent" as a band, not a bare ratio: the
    // absolute slack keeps scheduler noise on a ~15 ms load from
    // reading as a catalyst regression.
    assert!(
        cat_ms <= base_ms * 1.06 + live_slack_ms(live_cat.trace.fetches.len()),
        "live catalyst {cat_ms:.1} ms vs live baseline {base_ms:.1} ms"
    );
    // …and the sim's predicted PLTs should be in the right ballpark.
    for (sim, live) in [(&sim_base, &live_base), (&sim_cat, &live_cat)] {
        let sim_ms = sim.plt_ms();
        let live_ms = live.plt.as_secs_f64() * 1000.0;
        assert!(
            within_band(
                live_ms,
                sim_ms,
                0.30,
                live_slack_ms(sim.trace.fetches.len())
            ),
            "sim {sim_ms:.1} ms vs live {live_ms:.1} ms"
        );
    }
}
