//! Builder determinism: two [`ServeOptions`] chains with the same
//! configuration must be observationally identical — same response
//! bytes, same deterministic `/metrics` series, same fault-schedule
//! consumption for the same seed.
//!
//! Through PR 8–9 this file additionally pinned the deprecated
//! `TcpOrigin::bind*` / `serve_stream*` entry points against their
//! builder equivalents; those shims were removed in PR 10, so what
//! remains is the half of the contract that still matters — the
//! builder itself is deterministic, which is what every replayable
//! experiment in EXPERIMENTS.md leans on.
//!
//! [`ServeOptions`]: cachecatalyst::origin::ServeOptions

use std::sync::Arc;

use cachecatalyst::httpwire::aio::ClientConn;
use cachecatalyst::netsim::FaultPlan;
use cachecatalyst::origin::{fixed_clock, watch_clock, ServeOptions, ServerFaults, TcpOrigin};
use cachecatalyst::prelude::*;
use tokio::net::TcpStream;
use tokio::sync::watch;

const PATHS: [&str; 5] = ["/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"];

fn origin() -> Arc<OriginServer> {
    Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst))
}

/// The full observable surface of one response. Virtual clocks make
/// even the `Date` header deterministic, so everything is compared.
fn fingerprint(resp: &Response) -> String {
    let mut headers: Vec<String> = resp
        .headers
        .iter()
        .map(|(k, v)| format!("{}: {}", k.as_str(), v.as_str()))
        .collect();
    headers.sort();
    format!(
        "{} | {} | body[{}]={:016x}",
        resp.status,
        headers.join("; "),
        resp.body.len(),
        fnv64(&resp.body)
    )
}

/// FNV-1a, the digest the rest of the test suite standardizes on.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Drives the canonical traffic pattern — a cold visit of every
/// resource, then a two-hour-later conditional revisit — against a
/// listening origin and returns every response fingerprint in order.
async fn drive(addr: std::net::SocketAddr, clock: &watch::Sender<i64>) -> Vec<String> {
    let stream = TcpStream::connect(addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    let mut prints = Vec::new();
    let mut etags = Vec::new();
    clock.send(0).unwrap();
    for path in PATHS {
        let resp = conn
            .round_trip(&Request::get(path).with_header("host", "example.org"))
            .await
            .unwrap();
        etags.push(resp.etag().expect("validator").to_string());
        prints.push(fingerprint(&resp));
    }
    clock.send(7200).unwrap();
    for (path, tag) in PATHS.iter().zip(&etags) {
        let resp = conn
            .round_trip(&Request::get(path).with_header("if-none-match", tag))
            .await
            .unwrap();
        prints.push(fingerprint(&resp));
    }
    prints
}

/// Parses a Prometheus exposition into (a) the set of metric names
/// and (b) the exact value of every monotonic-counter sample. The
/// `_total` counters are fully determined by the traffic; latency
/// histogram buckets are wall-clock-shaped and only compared by name.
fn deterministic_series(text: &str) -> (Vec<String>, Vec<(String, String)>) {
    let mut names = std::collections::BTreeSet::new();
    let mut counters = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line
            .split(['{', ' '])
            .next()
            .expect("split is never empty")
            .to_owned();
        if name.ends_with("_total") {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            counters.push((series.to_owned(), value.to_owned()));
        }
        names.insert(name);
    }
    (names.into_iter().collect(), counters)
}

#[tokio::test]
async fn identical_builder_configs_serve_identical_bytes() {
    let (tx_a, rx_a) = watch::channel(0i64);
    let a = TcpOrigin::builder()
        .server(origin())
        .clock(watch_clock(rx_a))
        .bind("127.0.0.1:0")
        .await
        .unwrap();
    let (tx_b, rx_b) = watch::channel(0i64);
    let b = TcpOrigin::builder()
        .server(origin())
        .clock(watch_clock(rx_b))
        .bind("127.0.0.1:0")
        .await
        .unwrap();

    let a_prints = drive(a.local_addr, &tx_a).await;
    let b_prints = drive(b.local_addr, &tx_b).await;
    assert_eq!(a_prints.len(), 2 * PATHS.len());
    assert_eq!(a_prints, b_prints);

    // Ops endpoints stay opt-in: without `.ops(true)`, site dispatch
    // answers (and the example site has no /metrics resource).
    for addr in [a.local_addr, b.local_addr] {
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut conn = ClientConn::new(stream);
        let resp = conn.round_trip(&Request::get("/metrics")).await.unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }
    a.shutdown().await;
    b.shutdown().await;
}

#[tokio::test]
async fn identical_ops_configs_expose_identical_metrics() {
    let (tx_a, rx_a) = watch::channel(0i64);
    let a = TcpOrigin::builder()
        .server(origin())
        .clock(watch_clock(rx_a))
        .ops(true)
        .bind("127.0.0.1:0")
        .await
        .unwrap();
    let (tx_b, rx_b) = watch::channel(0i64);
    let b = TcpOrigin::builder()
        .server(origin())
        .clock(watch_clock(rx_b))
        .ops(true)
        .bind("127.0.0.1:0")
        .await
        .unwrap();

    assert_eq!(
        drive(a.local_addr, &tx_a).await,
        drive(b.local_addr, &tx_b).await
    );

    let mut scrapes = Vec::new();
    for addr in [a.local_addr, b.local_addr] {
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut conn = ClientConn::new(stream);
        let resp = conn.round_trip(&Request::get("/metrics")).await.unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        scrapes.push(String::from_utf8(resp.body.to_vec()).unwrap());
    }
    let (a_names, a_counters) = deterministic_series(&scrapes[0]);
    let (b_names, b_counters) = deterministic_series(&scrapes[1]);
    assert_eq!(a_names, b_names, "series sets diverge");
    assert_eq!(a_counters, b_counters, "counter values diverge");
    assert!(
        a_counters
            .iter()
            .any(|(series, value)| series.starts_with("origin_requests_total") && value == "10"),
        "traffic not accounted: {a_counters:?}"
    );
    a.shutdown().await;
    b.shutdown().await;
}

/// One request against a possibly-faulting origin, reduced to a
/// deterministic outcome tag. Connection-level faults (stalls, resets,
/// truncation) surface as client errors; those tear the connection
/// down, so the driver reconnects for the next draw.
async fn fault_outcomes(addr: std::net::SocketAddr, attempts: usize) -> Vec<String> {
    let mut outcomes = Vec::new();
    let mut conn: Option<ClientConn<TcpStream>> = None;
    for i in 0..attempts {
        if conn.is_none() {
            conn = Some(ClientConn::new(TcpStream::connect(addr).await.unwrap()));
        }
        let path = PATHS[i % PATHS.len()];
        match conn
            .as_mut()
            .expect("connected above")
            .round_trip(&Request::get(path).with_header("host", "example.org"))
            .await
        {
            Ok(resp) => outcomes.push(format!(
                "{}:{}:{:016x}",
                resp.status.as_u16(),
                resp.headers.get("x-cc-fault").unwrap_or("-"),
                fnv64(&resp.body)
            )),
            Err(_) => {
                outcomes.push("conn-error".to_owned());
                conn = None;
            }
        }
    }
    outcomes
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn identical_fault_plans_consume_identical_schedules() {
    let plan = FaultPlan::new(11)
        .with_fault_rate(0.4)
        .with_max_consecutive(2);
    let a = TcpOrigin::builder()
        .server(origin())
        .clock(fixed_clock(0))
        .faults(plan)
        .bind("127.0.0.1:0")
        .await
        .unwrap();
    let b = TcpOrigin::builder()
        .server(origin())
        .clock(fixed_clock(0))
        .faults(plan)
        .bind("127.0.0.1:0")
        .await
        .unwrap();

    let a_outcomes = fault_outcomes(a.local_addr, 30).await;
    let b_outcomes = fault_outcomes(b.local_addr, 30).await;
    assert_eq!(a_outcomes, b_outcomes, "schedule consumption diverges");
    // The comparison must not be vacuous: this seed fires visibly.
    assert!(
        a_outcomes
            .iter()
            .any(|o| o == "conn-error" || o.contains(":server-error:")),
        "no observable fault in 30 draws: {a_outcomes:?}"
    );
    a.shutdown().await;
    b.shutdown().await;
}

/// Runs `client` against a serving loop over an in-process duplex
/// pipe, returning the client's result once the server task settles.
async fn over_duplex<Srv, Fut, Out, FutC>(
    serve: Srv,
    client: impl FnOnce(ClientConn<tokio::io::DuplexStream>) -> FutC,
) -> Out
where
    Srv: FnOnce(tokio::io::DuplexStream) -> Fut,
    Fut: std::future::Future<Output = ()> + Send + 'static,
    FutC: std::future::Future<Output = Out>,
{
    let (client_end, server_end) = tokio::io::duplex(64 * 1024);
    let server = tokio::spawn(serve(server_end));
    let out = client(ClientConn::new(client_end)).await;
    // Dropping the client's pipe end lands the serving loop on a clean
    // `Closed`, so the task joins instead of lingering.
    server.await.expect("serving loop settles");
    out
}

#[tokio::test]
async fn serve_stream_is_deterministic_over_a_pipe() {
    let fetch_all = |mut conn: ClientConn<tokio::io::DuplexStream>| async move {
        let mut prints = Vec::new();
        for path in PATHS {
            let resp = conn
                .round_trip(&Request::get(path).with_header("host", "example.org"))
                .await
                .unwrap();
            prints.push(fingerprint(&resp));
        }
        prints
    };

    let mut runs = Vec::new();
    for _ in 0..2 {
        let server = origin();
        let prints = over_duplex(
            move |stream| async move {
                let _ = ServeOptions::new()
                    .server(server)
                    .clock(fixed_clock(3600))
                    .serve_stream(stream)
                    .await;
            },
            fetch_all,
        )
        .await;
        runs.push(prints);
    }
    assert_eq!(runs[0].len(), PATHS.len());
    assert_eq!(runs[0], runs[1]);
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn shared_faults_keep_their_draw_order_across_pipe_reconnects() {
    let plan = FaultPlan::new(23)
        .with_fault_rate(0.4)
        .with_max_consecutive(2);

    // Each serving loop owns one stream; the shared `ServerFaults`
    // keeps the draw order across reconnects, exactly like a listener.
    async fn outcomes_via<F>(spawn_server: F) -> Vec<String>
    where
        F: Fn(tokio::io::DuplexStream),
    {
        let mut outcomes = Vec::new();
        let mut conn: Option<ClientConn<tokio::io::DuplexStream>> = None;
        for i in 0..30 {
            let mut c = match conn.take() {
                Some(c) => c,
                None => {
                    let (client_end, server_end) = tokio::io::duplex(64 * 1024);
                    spawn_server(server_end);
                    ClientConn::new(client_end)
                }
            };
            let path = PATHS[i % PATHS.len()];
            match c
                .round_trip(&Request::get(path).with_header("host", "example.org"))
                .await
            {
                Ok(resp) => {
                    outcomes.push(format!(
                        "{}:{}",
                        resp.status.as_u16(),
                        resp.headers.get("x-cc-fault").unwrap_or("-")
                    ));
                    conn = Some(c);
                }
                Err(_) => outcomes.push("conn-error".to_owned()),
            }
        }
        outcomes
    }

    let mut runs = Vec::new();
    for _ in 0..2 {
        let server = origin();
        let faults = ServerFaults::new(plan);
        let outcomes = outcomes_via(move |stream| {
            let opts = ServeOptions::new()
                .server(Arc::clone(&server))
                .clock(fixed_clock(0))
                .shared_faults(Arc::clone(&faults));
            tokio::spawn(async move {
                let _ = opts.serve_stream(stream).await;
            });
        })
        .await;
        runs.push(outcomes);
    }

    assert_eq!(runs[0], runs[1], "schedule consumption diverges");
    assert!(
        runs[0].iter().any(|o| o != "200:-"),
        "no observable fault in 30 draws: {runs:?}"
    );
}
