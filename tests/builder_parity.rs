//! Builder parity: every deprecated `TcpOrigin` entry point must be
//! observationally identical to the [`ServeOptions`] builder chain it
//! now delegates to — same response bytes, same deterministic
//! `/metrics` series, same fault-schedule consumption for the same
//! seed. These tests are the contract that lets the old names be
//! deleted in a later release without anyone noticing.
//!
//! [`ServeOptions`]: cachecatalyst::origin::ServeOptions

#![allow(deprecated)]

use std::sync::Arc;

use cachecatalyst::httpwire::aio::ClientConn;
use cachecatalyst::netsim::FaultPlan;
use cachecatalyst::origin::{
    fixed_clock, serve_stream, serve_stream_with_faults, serve_stream_with_ops, watch_clock,
    ServeOptions, ServerFaults, TcpOrigin,
};
use cachecatalyst::prelude::*;
use tokio::net::TcpStream;
use tokio::sync::watch;

const PATHS: [&str; 5] = ["/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"];

fn origin() -> Arc<OriginServer> {
    Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst))
}

/// The full observable surface of one response. Virtual clocks make
/// even the `Date` header deterministic, so everything is compared.
fn fingerprint(resp: &Response) -> String {
    let mut headers: Vec<String> = resp
        .headers
        .iter()
        .map(|(k, v)| format!("{}: {}", k.as_str(), v.as_str()))
        .collect();
    headers.sort();
    format!(
        "{} | {} | body[{}]={:016x}",
        resp.status,
        headers.join("; "),
        resp.body.len(),
        fnv64(&resp.body)
    )
}

/// FNV-1a, the digest the rest of the test suite standardizes on.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Drives the canonical traffic pattern — a cold visit of every
/// resource, then a two-hour-later conditional revisit — against a
/// listening origin and returns every response fingerprint in order.
async fn drive(addr: std::net::SocketAddr, clock: &watch::Sender<i64>) -> Vec<String> {
    let stream = TcpStream::connect(addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    let mut prints = Vec::new();
    let mut etags = Vec::new();
    clock.send(0).unwrap();
    for path in PATHS {
        let resp = conn
            .round_trip(&Request::get(path).with_header("host", "example.org"))
            .await
            .unwrap();
        etags.push(resp.etag().expect("validator").to_string());
        prints.push(fingerprint(&resp));
    }
    clock.send(7200).unwrap();
    for (path, tag) in PATHS.iter().zip(&etags) {
        let resp = conn
            .round_trip(&Request::get(path).with_header("if-none-match", tag))
            .await
            .unwrap();
        prints.push(fingerprint(&resp));
    }
    prints
}

/// Parses a Prometheus exposition into (a) the set of metric names
/// and (b) the exact value of every monotonic-counter sample. The
/// `_total` counters are fully determined by the traffic; latency
/// histogram buckets are wall-clock-shaped and only compared by name.
fn deterministic_series(text: &str) -> (Vec<String>, Vec<(String, String)>) {
    let mut names = std::collections::BTreeSet::new();
    let mut counters = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line
            .split(['{', ' '])
            .next()
            .expect("split is never empty")
            .to_owned();
        if name.ends_with("_total") {
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            counters.push((series.to_owned(), value.to_owned()));
        }
        names.insert(name);
    }
    (names.into_iter().collect(), counters)
}

#[tokio::test]
async fn deprecated_bind_serves_the_same_bytes_as_the_builder() {
    let (tx_old, rx_old) = watch::channel(0i64);
    let old = TcpOrigin::bind("127.0.0.1:0", origin(), watch_clock(rx_old))
        .await
        .unwrap();
    let (tx_new, rx_new) = watch::channel(0i64);
    let new = TcpOrigin::builder()
        .server(origin())
        .clock(watch_clock(rx_new))
        .bind("127.0.0.1:0")
        .await
        .unwrap();

    let old_prints = drive(old.local_addr, &tx_old).await;
    let new_prints = drive(new.local_addr, &tx_new).await;
    assert_eq!(old_prints.len(), 2 * PATHS.len());
    assert_eq!(old_prints, new_prints);

    // Ops endpoints stay opt-in on both paths: site dispatch answers.
    for addr in [old.local_addr, new.local_addr] {
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut conn = ClientConn::new(stream);
        let resp = conn.round_trip(&Request::get("/metrics")).await.unwrap();
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }
    old.shutdown().await;
    new.shutdown().await;
}

#[tokio::test]
async fn deprecated_bind_with_ops_exposes_the_same_metrics_as_the_builder() {
    let (tx_old, rx_old) = watch::channel(0i64);
    let old = TcpOrigin::bind_with_ops("127.0.0.1:0", origin(), watch_clock(rx_old))
        .await
        .unwrap();
    let (tx_new, rx_new) = watch::channel(0i64);
    let new = TcpOrigin::builder()
        .server(origin())
        .clock(watch_clock(rx_new))
        .ops(true)
        .bind("127.0.0.1:0")
        .await
        .unwrap();

    assert_eq!(
        drive(old.local_addr, &tx_old).await,
        drive(new.local_addr, &tx_new).await
    );

    let mut scrapes = Vec::new();
    for addr in [old.local_addr, new.local_addr] {
        let stream = TcpStream::connect(addr).await.unwrap();
        let mut conn = ClientConn::new(stream);
        let resp = conn.round_trip(&Request::get("/metrics")).await.unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        scrapes.push(String::from_utf8(resp.body.to_vec()).unwrap());
    }
    let (old_names, old_counters) = deterministic_series(&scrapes[0]);
    let (new_names, new_counters) = deterministic_series(&scrapes[1]);
    assert_eq!(old_names, new_names, "series sets diverge");
    assert_eq!(old_counters, new_counters, "counter values diverge");
    assert!(
        old_counters
            .iter()
            .any(|(series, value)| series.starts_with("origin_requests_total") && value == "10"),
        "traffic not accounted: {old_counters:?}"
    );
    old.shutdown().await;
    new.shutdown().await;
}

/// One request against a possibly-faulting origin, reduced to a
/// deterministic outcome tag. Connection-level faults (stalls, resets,
/// truncation) surface as client errors; those tear the connection
/// down, so the driver reconnects for the next draw.
async fn fault_outcomes(addr: std::net::SocketAddr, attempts: usize) -> Vec<String> {
    let mut outcomes = Vec::new();
    let mut conn: Option<ClientConn<TcpStream>> = None;
    for i in 0..attempts {
        if conn.is_none() {
            conn = Some(ClientConn::new(TcpStream::connect(addr).await.unwrap()));
        }
        let path = PATHS[i % PATHS.len()];
        match conn
            .as_mut()
            .expect("connected above")
            .round_trip(&Request::get(path).with_header("host", "example.org"))
            .await
        {
            Ok(resp) => outcomes.push(format!(
                "{}:{}:{:016x}",
                resp.status.as_u16(),
                resp.headers.get("x-cc-fault").unwrap_or("-"),
                fnv64(&resp.body)
            )),
            Err(_) => {
                outcomes.push("conn-error".to_owned());
                conn = None;
            }
        }
    }
    outcomes
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn deprecated_bind_with_faults_consumes_the_same_schedule_as_the_builder() {
    let plan = FaultPlan::new(11)
        .with_fault_rate(0.4)
        .with_max_consecutive(2);
    let old = TcpOrigin::bind_with_faults("127.0.0.1:0", origin(), fixed_clock(0), plan)
        .await
        .unwrap();
    let new = TcpOrigin::builder()
        .server(origin())
        .clock(fixed_clock(0))
        .faults(plan)
        .bind("127.0.0.1:0")
        .await
        .unwrap();

    let old_outcomes = fault_outcomes(old.local_addr, 30).await;
    let new_outcomes = fault_outcomes(new.local_addr, 30).await;
    assert_eq!(old_outcomes, new_outcomes, "schedule consumption diverges");
    // The comparison must not be vacuous: this seed fires visibly.
    assert!(
        old_outcomes
            .iter()
            .any(|o| o == "conn-error" || o.contains(":server-error:")),
        "no observable fault in 30 draws: {old_outcomes:?}"
    );
    old.shutdown().await;
    new.shutdown().await;
}

/// Runs `client` against a serving loop over an in-process duplex
/// pipe, returning the client's result once the server task settles.
async fn over_duplex<Srv, Fut, Out, FutC>(
    serve: Srv,
    client: impl FnOnce(ClientConn<tokio::io::DuplexStream>) -> FutC,
) -> Out
where
    Srv: FnOnce(tokio::io::DuplexStream) -> Fut,
    Fut: std::future::Future<Output = ()> + Send + 'static,
    FutC: std::future::Future<Output = Out>,
{
    let (client_end, server_end) = tokio::io::duplex(64 * 1024);
    let server = tokio::spawn(serve(server_end));
    let out = client(ClientConn::new(client_end)).await;
    // Dropping the client's pipe end lands the serving loop on a clean
    // `Closed`, so the task joins instead of lingering.
    server.await.expect("serving loop settles");
    out
}

#[tokio::test]
async fn deprecated_serve_stream_matches_the_builder_over_a_pipe() {
    let fetch_all = |mut conn: ClientConn<tokio::io::DuplexStream>| async move {
        let mut prints = Vec::new();
        for path in PATHS {
            let resp = conn
                .round_trip(&Request::get(path).with_header("host", "example.org"))
                .await
                .unwrap();
            prints.push(fingerprint(&resp));
        }
        prints
    };

    let old_origin = origin();
    let old = over_duplex(
        move |stream| async move {
            let _ = serve_stream(stream, old_origin, fixed_clock(3600)).await;
        },
        fetch_all,
    )
    .await;
    let new_origin = origin();
    let new = over_duplex(
        move |stream| async move {
            let _ = ServeOptions::new()
                .server(new_origin)
                .clock(fixed_clock(3600))
                .serve_stream(stream)
                .await;
        },
        fetch_all,
    )
    .await;
    assert_eq!(old, new);
}

#[tokio::test]
async fn deprecated_serve_stream_with_ops_matches_the_builder_over_a_pipe() {
    let scrape = |mut conn: ClientConn<tokio::io::DuplexStream>| async move {
        for path in PATHS {
            conn.round_trip(&Request::get(path).with_header("host", "example.org"))
                .await
                .unwrap();
        }
        let resp = conn.round_trip(&Request::get("/metrics")).await.unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        String::from_utf8(resp.body.to_vec()).unwrap()
    };

    let old_origin = origin();
    let old = over_duplex(
        move |stream| async move {
            let _ = serve_stream_with_ops(stream, old_origin, fixed_clock(0)).await;
        },
        scrape,
    )
    .await;
    let new_origin = origin();
    let new = over_duplex(
        move |stream| async move {
            let _ = ServeOptions::new()
                .server(new_origin)
                .clock(fixed_clock(0))
                .ops(true)
                .serve_stream(stream)
                .await;
        },
        scrape,
    )
    .await;
    assert_eq!(deterministic_series(&old), deterministic_series(&new));
}

#[tokio::test(flavor = "multi_thread", worker_threads = 2)]
async fn deprecated_serve_stream_with_faults_matches_the_builder_over_pipes() {
    let plan = FaultPlan::new(23)
        .with_fault_rate(0.4)
        .with_max_consecutive(2);

    // Each serving loop owns one stream; the shared `ServerFaults`
    // keeps the draw order across reconnects, exactly like a listener.
    async fn outcomes_via<F>(spawn_server: F) -> Vec<String>
    where
        F: Fn(tokio::io::DuplexStream),
    {
        let mut outcomes = Vec::new();
        let mut conn: Option<ClientConn<tokio::io::DuplexStream>> = None;
        for i in 0..30 {
            let mut c = match conn.take() {
                Some(c) => c,
                None => {
                    let (client_end, server_end) = tokio::io::duplex(64 * 1024);
                    spawn_server(server_end);
                    ClientConn::new(client_end)
                }
            };
            let path = PATHS[i % PATHS.len()];
            match c
                .round_trip(&Request::get(path).with_header("host", "example.org"))
                .await
            {
                Ok(resp) => {
                    outcomes.push(format!(
                        "{}:{}",
                        resp.status.as_u16(),
                        resp.headers.get("x-cc-fault").unwrap_or("-")
                    ));
                    conn = Some(c);
                }
                Err(_) => outcomes.push("conn-error".to_owned()),
            }
        }
        outcomes
    }

    let old_origin = origin();
    let old_faults = ServerFaults::new(plan);
    let old = outcomes_via(move |stream| {
        let origin = Arc::clone(&old_origin);
        let faults = Arc::clone(&old_faults);
        tokio::spawn(async move {
            let _ = serve_stream_with_faults(stream, origin, fixed_clock(0), faults).await;
        });
    })
    .await;

    let new_origin = origin();
    let new_faults = ServerFaults::new(plan);
    let new = outcomes_via(move |stream| {
        let opts = ServeOptions::new()
            .server(Arc::clone(&new_origin))
            .clock(fixed_clock(0))
            .shared_faults(Arc::clone(&new_faults));
        tokio::spawn(async move {
            let _ = opts.serve_stream(stream).await;
        });
    })
    .await;

    assert_eq!(old, new, "schedule consumption diverges");
    assert!(
        old.iter().any(|o| o != "200:-"),
        "no observable fault in 30 draws: {old:?}"
    );
}
