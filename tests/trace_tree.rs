//! Integration: every sampled page load yields one *connected* span
//! tree — a single `page_load` root, no orphans — and a cache-decision
//! audit trail whose entries sum exactly to the load's resource count.
//! This is the correctness oracle the tracing tentpole promises: if a
//! fetch ever loses its span parentage across the browser → proxy →
//! origin hops, or a resource is served without an audit verdict,
//! these tests fail.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use cachecatalyst::prelude::*;
use cachecatalyst::proxies::{PushOrigin, PushPolicy, RdrProxy};
use cachecatalyst::telemetry::span::{Sampling, Span, SpanId, SpanSink, TraceId};
use cachecatalyst::telemetry::CacheDecision;

fn base() -> Url {
    Url::parse("http://example.org/index.html").unwrap()
}

fn cond() -> NetworkConditions {
    NetworkConditions::five_g_median()
}

/// Asserts the spans of one trace form a single connected tree and
/// returns (root, members).
fn assert_connected_tree(spans: &[Span], trace: TraceId) -> (SpanId, Vec<Span>) {
    let members: Vec<Span> = spans
        .iter()
        .filter(|s| s.trace_id == trace)
        .cloned()
        .collect();
    let ids: HashSet<SpanId> = members.iter().map(|s| s.span_id).collect();
    assert_eq!(ids.len(), members.len(), "duplicate span ids");
    let roots: Vec<&Span> = members.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root: {roots:#?}");
    let root = roots[0];
    assert_eq!(root.name, "page_load");
    // No orphans: every non-root span's parent was recorded.
    let mut parent_of: HashMap<SpanId, SpanId> = HashMap::new();
    for s in &members {
        if let Some(p) = s.parent {
            assert!(
                ids.contains(&p),
                "orphan span {:?} ({}) has unrecorded parent {:?}",
                s.span_id,
                s.name,
                p
            );
            parent_of.insert(s.span_id, p);
        }
    }
    // Connected: every span walks up to the root (and the parent map
    // is acyclic along the way).
    for s in &members {
        let mut cur = s.span_id;
        let mut hops = 0;
        while cur != root.span_id {
            cur = parent_of[&cur];
            hops += 1;
            assert!(hops <= members.len(), "cycle reaching root from {cur:?}");
        }
    }
    (root.span_id, members)
}

/// Runs `loads` page loads with sampling always-on, asserting the
/// span-tree and audit invariants per load. Returns all spans.
fn run_traced(mut browser: Browser, upstream: &dyn Upstream, loads: &[i64]) -> Vec<Span> {
    let sink = Arc::new(SpanSink::new(Sampling::Always));
    browser = browser.with_span_sink(Arc::clone(&sink));
    let mut all = Vec::new();
    for &t in loads {
        let report = browser.load(upstream, cond(), &base(), t);
        let spans = sink.drain();
        let traces: HashSet<TraceId> = spans.iter().map(|s| s.trace_id).collect();
        assert_eq!(traces.len(), 1, "one trace per load");
        let (root, members) = assert_connected_tree(&spans, *traces.iter().next().unwrap());
        // One fetch span per resource, all children of the root.
        let fetches: Vec<&Span> = members.iter().filter(|s| s.name == "fetch").collect();
        assert_eq!(fetches.len(), report.trace.fetches.len());
        assert!(fetches.iter().all(|s| s.parent == Some(root)));
        // The audit trail covers every resource exactly once, in
        // trace order.
        assert_eq!(report.audits.len(), report.trace.fetches.len());
        for (audit, fetch) in report.audits.iter().zip(&report.trace.fetches) {
            assert_eq!(audit.url, fetch.url);
            let expected = match fetch.outcome {
                FetchOutcome::ServiceWorkerHit => CacheDecision::SwHitZeroRtt,
                FetchOutcome::NotModified => CacheDecision::Conditional304,
                FetchOutcome::FullTransfer => CacheDecision::FullFetch,
                FetchOutcome::CacheHit | FetchOutcome::Pushed => CacheDecision::Bypass,
            };
            assert_eq!(audit.decision, expected, "{}", audit.url);
        }
        all.extend(spans);
    }
    all
}

#[test]
fn catalyst_visits_produce_connected_trees_and_full_audits() {
    // One sink shared between browser and origin, so origin spans
    // land in the same trace as the browser's fetch spans.
    let sink = Arc::new(SpanSink::new(Sampling::Always));
    let origin = Arc::new(
        OriginServer::new(example_site(), HeaderMode::Catalyst).with_span_sink(Arc::clone(&sink)),
    );
    let upstream = SingleOrigin(Arc::clone(&origin));
    let mut browser = Browser::catalyst().with_span_sink(Arc::clone(&sink));

    // Cold visit, then a warm revisit one minute later.
    for (visit, t) in [(0usize, 0i64), (1, 60)] {
        let report = browser.load(&upstream, cond(), &base(), t);
        let spans = sink.drain();
        let traces: HashSet<TraceId> = spans.iter().map(|s| s.trace_id).collect();
        assert_eq!(traces.len(), 1);
        let (root, members) = assert_connected_tree(&spans, *traces.iter().next().unwrap());

        let by_name = |n: &str| members.iter().filter(|s| s.name == n).count();
        assert_eq!(by_name("fetch"), report.trace.fetches.len());
        assert_eq!(report.audits.len(), report.trace.fetches.len());

        // Network fetches hit the origin: their origin.handle spans
        // are in the tree, parented beneath the matching fetch span.
        let network = report
            .trace
            .fetches
            .iter()
            .filter(|f| f.outcome.used_network())
            .count();
        assert_eq!(by_name("origin.handle"), network, "visit {visit}");
        for s in members.iter().filter(|s| s.name == "origin.handle") {
            let parent = s.parent.expect("origin spans have parents");
            let parent_span = members
                .iter()
                .find(|m| m.span_id == parent)
                .expect("parent recorded");
            assert_eq!(parent_span.name, "fetch");
            assert_ne!(parent_span.span_id, root);
        }
        // The page request exercised the config cache, and its origin
        // span says whether the churn-epoch entry was a hit or miss.
        assert!(
            members.iter().any(|s| s.name == "origin.handle"
                && s.attrs
                    .iter()
                    .any(|(k, v)| *k == "config_cache" && (v == "hit" || v == "miss"))),
            "visit {visit}: no config_cache attr on any origin span"
        );

        // Warm visit: the service worker served subresources with
        // zero RTTs, and each such audit carries the consulted etag
        // plus a staleness verdict.
        if visit == 1 {
            let sw_audits: Vec<_> = report
                .audits
                .iter()
                .filter(|a| a.decision == CacheDecision::SwHitZeroRtt)
                .collect();
            assert!(!sw_audits.is_empty(), "warm catalyst visit has SW hits");
            for a in &sw_audits {
                assert!(a.etag.is_some(), "{a:?}");
                assert_eq!(
                    a.served_stale,
                    Some(false),
                    "unchanged content must be audited as current: {a:?}"
                );
            }
            // The origin attached the churn epoch to traced responses
            // and the engine recorded it in the audits of fetches that
            // reached the origin.
            assert!(
                report.audits.iter().any(|a| a.epoch.is_some()),
                "{:#?}",
                report.audits
            );
        }
    }
}

#[test]
fn baseline_and_uncached_loads_are_fully_audited() {
    for (browser, mode) in [
        (Browser::baseline(), HeaderMode::Baseline),
        (Browser::uncached(), HeaderMode::Baseline),
    ] {
        let origin = Arc::new(OriginServer::new(example_site(), mode));
        let upstream = SingleOrigin(origin);
        run_traced(browser, &upstream, &[0, 60, 7200]);
    }
}

#[test]
fn proxy_hops_nest_between_fetch_and_origin() {
    let sink = Arc::new(SpanSink::new(Sampling::Always));
    let origin = Arc::new(
        OriginServer::new(example_site(), HeaderMode::Baseline).with_span_sink(Arc::clone(&sink)),
    );
    let rdr = RdrProxy::new(Arc::clone(&origin));
    let mut browser = Browser::uncached().with_span_sink(Arc::clone(&sink));
    browser.load(&rdr, cond(), &base(), 0);

    let spans = sink.drain();
    let traces: HashSet<TraceId> = spans.iter().map(|s| s.trace_id).collect();
    assert_eq!(traces.len(), 1);
    let (_, members) = assert_connected_tree(&spans, *traces.iter().next().unwrap());

    let hops: Vec<&Span> = members.iter().filter(|s| s.name == "proxy.rdr").collect();
    assert!(!hops.is_empty(), "proxy hop recorded");
    for hop in hops {
        // fetch → proxy.rdr → origin.handle chain.
        let parent = members
            .iter()
            .find(|m| Some(m.span_id) == hop.parent)
            .expect("proxy parent recorded");
        assert_eq!(parent.name, "fetch");
        assert!(
            members
                .iter()
                .any(|m| m.name == "origin.handle" && m.parent == Some(hop.span_id)),
            "origin span nests under the proxy hop"
        );
    }
}

#[test]
fn push_origin_audits_pushed_resources_as_bypass() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let push = PushOrigin::new(origin, PushPolicy::All);
    let spans = run_traced(Browser::uncached(), &push, &[0]);
    // Pushed resources still get fetch spans inside the tree.
    assert!(spans
        .iter()
        .any(|s| s.name == "fetch" && s.attrs.iter().any(|(k, v)| *k == "role" && v == "push")));
}

#[test]
fn unsampled_loads_record_nothing() {
    let sink = Arc::new(SpanSink::new(Sampling::Off));
    let origin = Arc::new(
        OriginServer::new(example_site(), HeaderMode::Catalyst).with_span_sink(Arc::clone(&sink)),
    );
    let upstream = SingleOrigin(origin);
    let mut browser = Browser::catalyst().with_span_sink(Arc::clone(&sink));
    let report = browser.load(&upstream, cond(), &base(), 0);
    assert!(sink.is_empty(), "sampling off records no spans");
    // The audit trail is orthogonal to sampling: always complete.
    assert_eq!(report.audits.len(), report.trace.fetches.len());
}
