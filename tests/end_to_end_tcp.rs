//! Integration: the full CacheCatalyst protocol over real TCP sockets
//! — our HTTP/1.1 client talking to the tokio origin, exercising the
//! same logic a real service worker would run.

use std::sync::Arc;
use std::time::Instant;

use cachecatalyst::catalyst::{ServiceWorker, SwDecision};
use cachecatalyst::chaos::{live_slack_ms, within_band};
use cachecatalyst::httpwire::aio::ClientConn;
use cachecatalyst::origin::{watch_clock, TcpOrigin};
use cachecatalyst::prelude::*;
use tokio::net::TcpStream;
use tokio::sync::watch;

async fn start_origin(mode: HeaderMode) -> (TcpOrigin, watch::Sender<i64>) {
    let (tx, rx) = watch::channel(0i64);
    let origin = Arc::new(OriginServer::new(example_site(), mode));
    let server = TcpOrigin::builder()
        .server(origin)
        .clock(watch_clock(rx))
        .bind("127.0.0.1:0")
        .await
        .expect("bind");
    (server, tx)
}

#[tokio::test]
async fn catalyst_protocol_over_tcp() {
    let (server, clock) = start_origin(HeaderMode::Catalyst).await;
    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    let mut sw = ServiceWorker::new();

    // --- First visit ---
    let nav = conn
        .round_trip(&Request::get("/index.html").with_header("host", "example.org"))
        .await
        .unwrap();
    assert_eq!(nav.status, StatusCode::OK);
    sw.on_navigation(&nav);
    assert_eq!(sw.config().len(), 2); // /a.css and /b.js

    // Fetch the statically-mapped subresources, teaching the SW.
    for path in ["/a.css", "/b.js"] {
        let url = format!("http://example.org{path}");
        match sw.intercept(&url, path) {
            SwDecision::Forward { if_none_match } => {
                assert!(if_none_match.is_none(), "cold cache");
                let resp = conn.round_trip(&Request::get(path)).await.unwrap();
                assert_eq!(resp.status, StatusCode::OK);
                sw.on_response(&url, &resp);
            }
            other => panic!("cold fetch must forward: {other:?}"),
        }
    }

    // --- Revisit two hours later ---
    clock.send(7200).unwrap();
    let nav2 = conn
        .round_trip(&Request::get("/index.html").with_header("host", "example.org"))
        .await
        .unwrap();
    sw.on_navigation(&nav2);

    // a.css and b.js are unchanged at +2h: zero-RTT local serves.
    for path in ["/a.css", "/b.js"] {
        let url = format!("http://example.org{path}");
        match sw.intercept(&url, path) {
            SwDecision::ServeLocal(resp) => {
                assert_eq!(resp.status, StatusCode::OK);
                assert!(!resp.body.is_empty());
                assert_eq!(resp.headers.get("x-served-by"), Some("cachecatalyst-sw"));
            }
            other => panic!("{path} should be served locally: {other:?}"),
        }
    }
    assert_eq!(sw.metrics.served_locally, 2);
    server.shutdown().await;
}

#[tokio::test]
async fn changed_resource_is_refetched_over_tcp() {
    let (server, clock) = start_origin(HeaderMode::Catalyst).await;
    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    let mut sw = ServiceWorker::new();

    let nav = conn.round_trip(&Request::get("/index.html")).await.unwrap();
    sw.on_navigation(&nav);
    // d.jpg is JS-discovered (unmapped), but the SW still caches it.
    let url = "http://example.org/d.jpg";
    let resp = conn.round_trip(&Request::get("/d.jpg")).await.unwrap();
    sw.on_response(url, &resp);
    let v0_body = resp.body.clone();

    clock.send(7200).unwrap(); // d.jpg changes at 100 min
    let nav2 = conn.round_trip(&Request::get("/index.html")).await.unwrap();
    sw.on_navigation(&nav2);
    match sw.intercept(url, "/d.jpg") {
        SwDecision::Forward { if_none_match } => {
            // Forwarded with the old validator; the origin sees the
            // change and sends the new body.
            let mut req = Request::get("/d.jpg");
            if let Some(tag) = if_none_match {
                req.headers.insert("if-none-match", &tag.to_string());
            }
            let resp = conn.round_trip(&req).await.unwrap();
            assert_eq!(resp.status, StatusCode::OK);
            assert_ne!(resp.body, v0_body, "changed content must be refetched");
        }
        other => panic!("changed resource must forward: {other:?}"),
    }
    server.shutdown().await;
}

#[tokio::test]
async fn baseline_origin_sends_no_config_over_tcp() {
    let (server, _clock) = start_origin(HeaderMode::Baseline).await;
    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    let nav = conn.round_trip(&Request::get("/index.html")).await.unwrap();
    assert!(nav.headers.get("x-etag-config").is_none());
    assert!(EtagConfig::from_response(&nav).unwrap().is_empty());
    server.shutdown().await;
}

#[tokio::test]
async fn many_concurrent_clients_over_tcp() {
    let (server, _clock) = start_origin(HeaderMode::Catalyst).await;
    let addr = server.local_addr;
    let mut tasks = Vec::new();
    for i in 0..16 {
        tasks.push(tokio::spawn(async move {
            let stream = TcpStream::connect(addr).await.unwrap();
            let mut conn = ClientConn::new(stream);
            let paths = ["/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"];
            let path = paths[i % paths.len()];
            for _ in 0..4 {
                let resp = conn.round_trip(&Request::get(path)).await.unwrap();
                assert_eq!(resp.status, StatusCode::OK, "{path}");
            }
        }));
    }
    for t in tasks {
        t.await.unwrap();
    }
    server.shutdown().await;
}

#[tokio::test]
async fn loopback_round_trips_are_stable_within_the_tolerance_band() {
    // Wall-clock assertions over real sockets need the band idiom the
    // chaos module provides: a relative envelope plus absolute slack
    // for scheduler noise (the offline tokio stand-in detects IO
    // readiness by re-polling every ~250 µs, so every await point can
    // contribute a fraction of a millisecond). A bare ratio between
    // two ~100 µs loopback round trips would be hopelessly flaky.
    let (server, _clock) = start_origin(HeaderMode::Catalyst).await;
    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    // Warm up: first exchange pays connection setup and lazy init.
    conn.round_trip(&Request::get("/index.html")).await.unwrap();

    let mut samples_ms = Vec::new();
    for _ in 0..6 {
        let start = Instant::now();
        let resp = conn.round_trip(&Request::get("/index.html")).await.unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        samples_ms.push(start.elapsed().as_secs_f64() * 1000.0);
    }
    let fastest = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);
    let slowest = samples_ms.iter().copied().fold(0.0f64, f64::max);
    // One request per sample → slack budget for a single fetch.
    assert!(
        within_band(fastest, slowest, 0.5, live_slack_ms(1)),
        "loopback round trips spread beyond the band: {samples_ms:?}"
    );
    server.shutdown().await;
}

#[tokio::test]
async fn large_etag_maps_split_and_survive_tcp() {
    // A 300-resource page produces an X-Etag-Config well beyond one
    // header line's worth; it must arrive split across multiple lines
    // and recombine losslessly over a real socket.
    let site = Site::generate(SiteSpec {
        host: "big.example".into(),
        seed: 4096,
        n_resources: 300,
        js_discovered_fraction: 0.0,
        ..Default::default()
    });
    let origin = Arc::new(OriginServer::new(site.clone(), HeaderMode::Catalyst));
    let expected = origin.handle(&Request::get("/index.html"), 0);
    let expected_config = EtagConfig::from_response(&expected).unwrap();
    assert!(expected_config.len() >= 250, "{}", expected_config.len());

    let (_tx, rx) = watch::channel(0i64);
    let server = TcpOrigin::builder()
        .server(origin)
        .clock(cachecatalyst::origin::watch_clock(rx))
        .bind("127.0.0.1:0")
        .await
        .unwrap();
    let stream = TcpStream::connect(server.local_addr).await.unwrap();
    let mut conn = ClientConn::new(stream);
    let resp = conn.round_trip(&Request::get("/index.html")).await.unwrap();
    // Multiple physical header lines on the wire…
    assert!(
        resp.headers.get_all("x-etag-config").count() > 1,
        "map should span several header lines"
    );
    // …that recombine to the exact same map.
    assert_eq!(EtagConfig::from_response(&resp).unwrap(), expected_config);
    server.shutdown().await;
}
