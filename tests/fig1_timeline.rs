//! Integration: the Figure-1 scenarios end to end through the facade.

use std::sync::Arc;

use cachecatalyst::prelude::*;
use cachecatalyst::webmodel::revisit_delay;

fn base() -> Url {
    Url::parse("http://example.org/index.html").unwrap()
}

fn cond() -> NetworkConditions {
    NetworkConditions::five_g_median()
}

#[test]
fn figure_1a_cold_load_shape() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let up = SingleOrigin(origin);
    let report = Browser::baseline().load(&up, cond(), &base(), 0);

    // Five resources, all full transfers, strictly widening waterfall.
    assert_eq!(report.trace.fetches.len(), 5);
    assert!(report
        .trace
        .fetches
        .iter()
        .all(|f| f.outcome == FetchOutcome::FullTransfer));
    let order = ["/index.html", "/a.css", "/b.js", "/c.js", "/d.jpg"];
    for pair in order.windows(2) {
        let t = |p: &str| {
            report
                .trace
                .fetches
                .iter()
                .find(|f| f.url.ends_with(p))
                .unwrap()
                .completed
        };
        assert!(
            t(pair[0]) <= t(pair[1]),
            "{} should finish before {}",
            pair[0],
            pair[1]
        );
    }
}

#[test]
fn figure_1b_and_1c_improvement_chain() {
    let t1 = revisit_delay().as_secs() as i64;

    // (b) status quo revisit.
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let up = SingleOrigin(origin);
    let mut b = Browser::baseline();
    let cold = b.load(&up, cond(), &base(), 0);
    let fig1b = b.load(&up, cond(), &base(), t1);

    // (c) optimized revisit (capture mode covers the JS chain, like
    // the figure's "only index.html is fetched" timeline).
    let origin = Arc::new(OriginServer::new(
        example_site(),
        HeaderMode::CatalystWithCapture,
    ));
    let up = SingleOrigin(origin);
    let mut c = Browser::new(EngineConfig {
        use_http_cache: false,
        use_service_worker: true,
        session: Some("fig1".into()),
        ..Default::default()
    });
    c.load(&up, cond(), &base(), 0);
    let fig1c = c.load(&up, cond(), &base(), t1);

    assert!(fig1b.plt < cold.plt, "caching helps at all");
    assert!(fig1c.plt < fig1b.plt, "the optimized revisit is faster");
    // In (c) the only revalidation RTTs left are the base document and
    // genuinely changed resources (index.html and d.jpg at +2h).
    assert_eq!(fig1c.network_requests(), 2, "{:#?}", fig1c.trace);
    assert!(fig1c.sw_hits >= 3);
}

#[test]
fn waterfall_rendering_is_complete() {
    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Baseline));
    let up = SingleOrigin(origin);
    let report = Browser::baseline().load(&up, cond(), &base(), 0);
    let rendered = report.trace.render_waterfall(40);
    for p in ["index.html", "a.css", "b.js", "c.js", "d.jpg"] {
        assert!(rendered.contains(p), "waterfall missing {p}:\n{rendered}");
    }
}
