//! Integration: the whole pipeline is deterministic — identical seeds
//! give bit-identical sites, bodies, ETags and nanosecond-identical
//! PLTs, which is what makes the evaluation reproducible.

use std::sync::Arc;

use cachecatalyst::prelude::*;

fn run_once(seed: u64, mode: HeaderMode) -> (Vec<u64>, u64, String) {
    let site = Site::generate(SiteSpec {
        host: "det.example".into(),
        seed,
        n_resources: 45,
        js_discovered_fraction: 0.1,
        ..Default::default()
    });
    let url = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    let origin = Arc::new(OriginServer::new(site.clone(), mode));
    let up = SingleOrigin(origin);
    let mut browser = match mode {
        HeaderMode::Baseline => Browser::baseline(),
        _ => Browser::catalyst(),
    };
    let cond = NetworkConditions::five_g_median();
    let cold = browser.load(&up, cond, &url, 1_000_000);
    let warm = browser.load(&up, cond, &url, 1_003_600);
    let etag = site
        .etag_at(site.base_path(), 1_000_000)
        .unwrap()
        .to_string();
    (
        vec![cold.plt.as_nanos(), warm.plt.as_nanos()],
        cold.bytes_down + warm.bytes_down,
        etag,
    )
}

#[test]
fn identical_seeds_are_bit_identical() {
    for mode in [HeaderMode::Baseline, HeaderMode::Catalyst] {
        let a = run_once(7, mode);
        let b = run_once(7, mode);
        assert_eq!(a, b, "mode {mode:?} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_once(7, HeaderMode::Baseline);
    let b = run_once(8, HeaderMode::Baseline);
    assert_ne!(a.0, b.0);
}

#[test]
fn site_bodies_and_etags_are_stable_functions_of_time() {
    let site = example_site();
    for t in [0i64, 3599, 3600, 7200, 86_400] {
        assert_eq!(site.body_at("/a.css", t), site.body_at("/a.css", t));
        assert_eq!(site.etag_at("/a.css", t), site.etag_at("/a.css", t));
    }
    // ETag changes exactly when the body changes.
    let site = example_site();
    let b0 = site.body_at("/d.jpg", 0).unwrap();
    let b1 = site.body_at("/d.jpg", 5_999).unwrap();
    let b2 = site.body_at("/d.jpg", 6_000).unwrap();
    assert_eq!(b0, b1);
    assert_ne!(b1, b2);
    assert_eq!(site.etag_at("/d.jpg", 0), site.etag_at("/d.jpg", 5_999));
    assert_ne!(site.etag_at("/d.jpg", 0), site.etag_at("/d.jpg", 6_000));
}
