//! Integration: the whole pipeline is deterministic — identical seeds
//! give bit-identical sites, bodies, ETags and nanosecond-identical
//! PLTs, which is what makes the evaluation reproducible.

use std::sync::Arc;

use cachecatalyst::prelude::*;

fn run_once(seed: u64, mode: HeaderMode) -> (Vec<u64>, u64, String) {
    let site = Site::generate(SiteSpec {
        host: "det.example".into(),
        seed,
        n_resources: 45,
        js_discovered_fraction: 0.1,
        ..Default::default()
    });
    let url = Url::parse(&format!("http://{}{}", site.spec.host, site.base_path())).unwrap();
    let origin = Arc::new(OriginServer::new(site.clone(), mode));
    let up = SingleOrigin(origin);
    let mut browser = match mode {
        HeaderMode::Baseline => Browser::baseline(),
        _ => Browser::catalyst(),
    };
    let cond = NetworkConditions::five_g_median();
    let cold = browser.load(&up, cond, &url, 1_000_000);
    let warm = browser.load(&up, cond, &url, 1_003_600);
    let etag = site
        .etag_at(site.base_path(), 1_000_000)
        .unwrap()
        .to_string();
    (
        vec![cold.plt.as_nanos(), warm.plt.as_nanos()],
        cold.bytes_down + warm.bytes_down,
        etag,
    )
}

#[test]
fn identical_seeds_are_bit_identical() {
    for mode in [HeaderMode::Baseline, HeaderMode::Catalyst] {
        let a = run_once(7, mode);
        let b = run_once(7, mode);
        assert_eq!(a, b, "mode {mode:?} not deterministic");
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_once(7, HeaderMode::Baseline);
    let b = run_once(8, HeaderMode::Baseline);
    assert_ne!(a.0, b.0);
}

mod fleet {
    //! The population-scale tier must be deterministic end to end:
    //! trace bytes, replay counters, audits — all pure functions of
    //! `(seed, spec)`.

    use cachecatalyst_bench::fleet::{run_fleet, FleetOptions};
    use cachecatalyst_bench::ClientKind;
    use cachecatalyst_webmodel::workload::{generate, Trace, WorkloadSpec};

    fn spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            users: 150,
            sites: 10,
            horizon_secs: 7_200,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn same_seed_gives_byte_identical_serialized_trace() {
        let a = generate(&spec(42)).to_jsonl();
        let b = generate(&spec(42)).to_jsonl();
        assert_eq!(a, b, "serialized traces differ across runs");
        // And the round trip through the parser is lossless.
        let parsed = Trace::from_jsonl(&a).unwrap();
        assert_eq!(parsed.to_jsonl(), a);
    }

    #[test]
    fn different_seeds_give_different_traces() {
        // Non-vacuity: the byte-identity test above must not be
        // passing because everything collapses to one trace.
        let a = generate(&spec(42)).to_jsonl();
        let b = generate(&spec(43)).to_jsonl();
        assert_ne!(a, b);
    }

    #[test]
    fn fleet_counters_are_identical_across_two_full_runs() {
        let trace = generate(&spec(42));
        for kind in [ClientKind::Baseline, ClientKind::Catalyst] {
            let opts = FleetOptions {
                kind,
                collect_audits: true,
                ..Default::default()
            };
            let a = run_fleet(&trace, &opts);
            let b = run_fleet(&trace, &opts);
            // FleetReport is PartialEq over every counter, the full
            // PLT histogram bucket vector, and the audit sequences.
            assert_eq!(a, b, "{kind:?} replay not deterministic");
            assert!(a.visits > 0 && a.edge.requests > 0);
        }
    }
}

#[test]
fn site_bodies_and_etags_are_stable_functions_of_time() {
    let site = example_site();
    for t in [0i64, 3599, 3600, 7200, 86_400] {
        assert_eq!(site.body_at("/a.css", t), site.body_at("/a.css", t));
        assert_eq!(site.etag_at("/a.css", t), site.etag_at("/a.css", t));
    }
    // ETag changes exactly when the body changes.
    let site = example_site();
    let b0 = site.body_at("/d.jpg", 0).unwrap();
    let b1 = site.body_at("/d.jpg", 5_999).unwrap();
    let b2 = site.body_at("/d.jpg", 6_000).unwrap();
    assert_eq!(b0, b1);
    assert_ne!(b1, b2);
    assert_eq!(site.etag_at("/d.jpg", 0), site.etag_at("/d.jpg", 5_999));
    assert_ne!(site.etag_at("/d.jpg", 0), site.etag_at("/d.jpg", 6_000));
}
