//! Flash-crowd regression: a spike of visits on the hottest page must
//! not stampede the origin. Two layers of evidence:
//!
//! 1. Fleet level — a workload with an injected flash crowd replays
//!    with bounded tail latency (p999) and sub-unit upstream cost per
//!    request: the edge absorbed the spike.
//! 2. Mechanism level — a barrier-synchronized spike on one churning
//!    asset costs the origin *exactly one* upstream fetch per churn
//!    epoch: single-flight coalesces the concurrent misses, and the
//!    catalyst map turns the next epoch's invalidation into one
//!    refetch instead of a thundering herd.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use cachecatalyst::edge::EdgeCache;
use cachecatalyst::prelude::*;
use cachecatalyst_bench::fleet::{run_fleet, FleetOptions};
use cachecatalyst_bench::ClientKind;
use cachecatalyst_webmodel::workload::{generate, FlashCrowd, WorkloadSpec};

/// Counts requests for one path that reach the wrapped upstream — the
/// origin-side witness that coalescing actually happened.
struct PathCountingUpstream<U> {
    inner: U,
    path: &'static str,
    count: AtomicU64,
}

impl<U: Upstream> Upstream for PathCountingUpstream<U> {
    fn handle(&self, host: &str, req: &Request, t_secs: i64) -> Response {
        if req.target.path() == self.path {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.handle(host, req, t_secs)
    }
}

#[test]
fn fleet_flash_crowd_keeps_tail_latency_and_offload_bounded() {
    let spec = WorkloadSpec {
        users: 300,
        sites: 5,
        horizon_secs: 7_200,
        seed: 7,
        flash_crowds: vec![FlashCrowd {
            at_secs: 3_600,
            duration_secs: 45,
            visits: 250,
            site_rank: 0,
        }],
        ..Default::default()
    };
    let trace = generate(&spec);
    let flash_events = trace.events.iter().filter(|e| e.flash).count();
    assert!(
        flash_events >= 200,
        "spike must actually be injected ({flash_events} flash events)"
    );
    assert!(
        trace.events.iter().filter(|e| e.flash).all(|e| e.site == 0),
        "flash visits must target the configured hot site"
    );

    for kind in [ClientKind::Baseline, ClientKind::Catalyst] {
        let report = run_fleet(
            &trace,
            &FleetOptions {
                kind,
                ..Default::default()
            },
        );
        assert!(report.visits > 0);
        // Tail latency stays bounded through the spike: p999 is a real
        // page-load time, not a queueing collapse.
        assert!(
            report.plt_p50_ms <= report.plt_p99_ms && report.plt_p99_ms <= report.plt_p999_ms,
            "percentiles out of order"
        );
        assert!(
            report.plt_p999_ms < 30_000.0,
            "{kind:?}: p999 {:.0}ms — the spike overwhelmed the tier",
            report.plt_p999_ms
        );
        // The edge, not the origin, absorbed the crowd.
        let upstream_per_req =
            report.edge.upstream_requests as f64 / report.edge.requests.max(1) as f64;
        assert!(
            upstream_per_req < 0.75,
            "{kind:?}: upstream/req {upstream_per_req:.3} — no offload during spike"
        );
    }
}

#[test]
fn spike_costs_exactly_one_upstream_fetch_per_churn_epoch() {
    const THREADS: usize = 8;
    // `example_site`'s `/d.jpg` changes body + ETag exactly at
    // t = 6000 (asserted by tests/determinism.rs), giving two churn
    // epochs at the spike times below.
    const HOT: &str = "/d.jpg";
    const EPOCH_TIMES: [i64; 2] = [0, 6_000];

    let origin = Arc::new(OriginServer::new(example_site(), HeaderMode::Catalyst));
    let counting = PathCountingUpstream {
        inner: SingleOrigin(origin),
        path: HOT,
        count: AtomicU64::new(0),
    };
    let edge = EdgeCache::builder(counting).build();
    let site = example_site();

    let mut epoch_digests = Vec::new();
    for (epoch, &t) in EPOCH_TIMES.iter().enumerate() {
        // The crowd lands on the page: one base-HTML pass-through
        // applies the current catalyst map (invalidating the churned
        // asset), then everyone requests it at once.
        let html = edge.handle("example.org", &Request::get(site.base_path()), t);
        assert_eq!(html.status, StatusCode::OK);

        let barrier = Barrier::new(THREADS);
        let digests: Vec<u64> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    let (edge, barrier) = (&edge, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        let resp = edge.handle("example.org", &Request::get(HOT), t);
                        assert_eq!(resp.status, StatusCode::OK);
                        fnv64(&resp.body)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Everyone in the crowd saw byte-identical content.
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "epoch {epoch}: coalesced responses diverge"
        );
        epoch_digests.push(digests[0]);

        // The figure of merit: THREADS concurrent requests, exactly
        // one upstream fetch per epoch so far.
        assert_eq!(
            edge.upstream().count.load(Ordering::Relaxed),
            epoch as u64 + 1,
            "epoch {epoch}: single-flight must collapse the spike to one fetch"
        );
    }

    // The refetch was real: the crowd got the *new* epoch's bytes.
    assert_ne!(
        epoch_digests[0], epoch_digests[1],
        "second epoch must serve the churned content"
    );
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
