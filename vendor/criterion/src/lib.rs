//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's benches compiling and *running* without the
//! real crate: each benchmark is warmed up briefly, timed over a
//! fixed wall-clock budget, and reported as mean ns/iter (plus
//! throughput when configured). No outlier analysis, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const MEASURE: Duration = Duration::from_millis(300);

/// Measurement context handed to bench closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP.as_nanos().max(1) / u128::from(warm_iters.max(1));
        let batch = (MEASURE.as_nanos() / per_iter.max(1)).clamp(1, 10_000_000) as u64;

        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = batch;
    }
}

/// Identifies a parameterised benchmark.
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            repr: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.repr
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level bench driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            group: name.to_owned(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_one(id, None, f);
        self
    }

    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    group: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.group, id.into_benchmark_id());
        run_one(&name, self.throughput, f);
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut b = Bencher {
        iters: 0,
        total: Duration::ZERO,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mibps = n as f64 / (ns / 1e9) / (1024.0 * 1024.0);
            println!("{name:<40} {ns:>12.1} ns/iter  {mibps:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (ns / 1e9);
            println!("{name:<40} {ns:>12.1} ns/iter  {eps:>10.0} elem/s");
        }
        None => println!("{name:<40} {ns:>12.1} ns/iter"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
