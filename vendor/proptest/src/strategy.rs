//! Strategies: composable deterministic value generators.

use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

use crate::rng::TestRng;

/// A generator of values of one type. Unlike real proptest there is
/// no value tree / shrinking — `generate` yields the value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

// Object-safe erasure so `prop_oneof!` can mix concrete strategies.
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

pub struct BoxedStrategy<V> {
    inner: Box<dyn DynStrategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

// ------------------------------------------------------------- strings

/// String literals are regex strategies, as in real proptest.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::regex::generate(self, rng)
    }
}

// -------------------------------------------------------------- ranges

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                // Bounded spread above the start, enough for tests.
                let v = rng.below(1 << 16) as i128;
                let hi = <$t>::MAX as i128;
                (self.start as i128 + v).min(hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// -------------------------------------------------------------- tuples

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);

// --------------------------------------------------------- collections

pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: Range<usize>,
}

pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy { key, value, size }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        // Duplicate keys collapse, as with real proptest: size is an
        // upper bound, not exact.
        let n = self.size.clone().generate(rng);
        (0..n)
            .map(|_| (self.key.generate(rng), self.value.generate(rng)))
            .collect()
    }
}

pub struct OptionStrategy<S> {
    inner: S,
}

pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

// ----------------------------------------------------------------- any

pub struct Any<T> {
    _marker: PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for String {
    /// Adversarial-ish strings: mixes ASCII, markup/syntax
    /// characters that the extractor tests care about, and
    /// multi-byte unicode.
    fn arbitrary(rng: &mut TestRng) -> String {
        const SPICE: &[char] = &[
            '<', '>', '"', '\'', '&', '=', '/', '\\', '\n', '\r', '\t', '\0', '(', ')', '{', '}',
            ';', ':', '%', 'é', 'ß', '中', '🎈',
        ];
        let len = rng.below(40) as usize;
        (0..len)
            .map(|_| match rng.below(3) {
                0 => SPICE[rng.below(SPICE.len() as u64) as usize],
                1 => char::from_u32((b'a' + rng.below(26) as u8) as u32).expect("ascii"),
                _ => char::from_u32((0x20 + rng.below(95)) as u32).expect("printable"),
            })
            .collect()
    }
}
