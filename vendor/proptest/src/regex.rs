//! Generator for the regex subset proptest string strategies use.
//!
//! Supported syntax: literals, `\`-escaped literals, character
//! classes `[a-z0-9_-]` (ranges + literal members, `\`-escapes),
//! groups `(...)` with alternation `|`, and the quantifiers `?`,
//! `*`, `+`, `{n}`, `{m,n}`. Unbounded repetition is capped at 8.
//! Anything else fails loudly at generation time — better a panic
//! naming the construct than silently wrong test data.

use crate::rng::TestRng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges; single members are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternation of sequences (a group body).
    Group(Vec<Vec<Node>>),
    Repeat {
        node: Box<Node>,
        min: u32,
        max: u32,
    },
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        pattern,
    }
    .parse_alternation();
    let mut out = String::new();
    // Top level may itself be alternation.
    let pick = rng.below(nodes.len() as u64) as usize;
    for node in &nodes[pick] {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u64 = ranges.iter().map(|(lo, hi)| span(*lo, *hi)).sum();
            let mut idx = rng.below(total);
            for (lo, hi) in ranges {
                let n = span(*lo, *hi);
                if idx < n {
                    let c = char::from_u32(*lo as u32 + idx as u32)
                        .expect("class range stays in scalar values");
                    out.push(c);
                    return;
                }
                idx -= n;
            }
            unreachable!("index within total weight");
        }
        Node::Group(alts) => {
            let pick = rng.below(alts.len() as u64) as usize;
            for n in &alts[pick] {
                emit(n, rng, out);
            }
        }
        Node::Repeat { node, min, max } => {
            let count = *min + rng.below(u64::from(*max - *min + 1)) as u32;
            for _ in 0..count {
                emit(node, rng, out);
            }
        }
    }
}

fn span(lo: char, hi: char) -> u64 {
    u64::from(hi as u32 - lo as u32 + 1)
}

struct Parser<'p> {
    chars: Vec<char>,
    pos: usize,
    pattern: &'p str,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        self.pos += 1;
        c
    }

    fn fail(&self, what: &str) -> ! {
        panic!(
            "regex stub: unsupported {what} at position {} in {:?}",
            self.pos, self.pattern
        );
    }

    /// alternation := sequence ('|' sequence)*
    fn parse_alternation(&mut self) -> Vec<Vec<Node>> {
        let mut alts = vec![self.parse_sequence()];
        while self.peek() == Some('|') {
            self.bump();
            alts.push(self.parse_sequence());
        }
        alts
    }

    fn parse_sequence(&mut self) -> Vec<Node> {
        let mut seq = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            let atom = self.parse_atom();
            seq.push(self.parse_quantifier(atom));
        }
        seq
    }

    fn parse_atom(&mut self) -> Node {
        match self.bump().expect("non-empty atom") {
            '(' => {
                let alts = self.parse_alternation();
                if self.bump() != Some(')') {
                    self.fail("unclosed group");
                }
                Node::Group(alts)
            }
            '[' => self.parse_class(),
            '\\' => Node::Literal(self.escaped()),
            '.' => Node::Class(vec![(' ', '~')]),
            c @ ('*' | '+' | '?' | '{') => self.fail(&format!("dangling quantifier {c:?}")),
            c => Node::Literal(c),
        }
    }

    fn escaped(&mut self) -> char {
        match self.bump() {
            Some('n') => '\n',
            Some('r') => '\r',
            Some('t') => '\t',
            Some(c) => c, // \- \? \. \\ etc: the literal itself
            None => self.fail("trailing backslash"),
        }
    }

    fn parse_class(&mut self) -> Node {
        let mut ranges = Vec::new();
        if self.peek() == Some('^') {
            self.fail("negated class");
        }
        loop {
            let lo = match self.bump() {
                Some(']') => break,
                Some('\\') => self.escaped(),
                Some(c) => c,
                None => self.fail("unclosed class"),
            };
            // Range iff '-' followed by a non-']' member.
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump();
                let hi = match self.bump() {
                    Some('\\') => self.escaped(),
                    Some(c) => c,
                    None => self.fail("unclosed class range"),
                };
                assert!(lo <= hi, "regex stub: inverted range in {:?}", self.pattern);
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            self.fail("empty class");
        }
        Node::Class(ranges)
    }

    fn parse_quantifier(&mut self, node: Node) -> Node {
        let (min, max) = match self.peek() {
            Some('?') => (0, 1),
            Some('*') => (0, UNBOUNDED_CAP),
            Some('+') => (1, UNBOUNDED_CAP),
            Some('{') => {
                self.bump();
                let mut first = String::new();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    first.push(self.bump().expect("digit"));
                }
                let min: u32 = first.parse().unwrap_or_else(|_| self.fail("bad {m,n}"));
                let max = match self.bump() {
                    Some('}') => min,
                    Some(',') => {
                        let mut second = String::new();
                        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                            second.push(self.bump().expect("digit"));
                        }
                        if self.bump() != Some('}') {
                            self.fail("unclosed {m,n}");
                        }
                        if second.is_empty() {
                            min + UNBOUNDED_CAP
                        } else {
                            second.parse().unwrap_or_else(|_| self.fail("bad {m,n}"))
                        }
                    }
                    _ => self.fail("unclosed {m,n}"),
                };
                return Node::Repeat {
                    node: Box::new(node),
                    min,
                    max,
                };
            }
            _ => return node,
        };
        self.bump();
        Node::Repeat {
            node: Box::new(node),
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(pattern: &str, verify: impl Fn(&str) -> bool) {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let s = generate(pattern, &mut rng);
            assert!(verify(&s), "pattern {pattern:?} produced {s:?}");
        }
    }

    #[test]
    fn workspace_patterns() {
        check("(/[a-zA-Z0-9._%,= -]{1,16}){1,3}", |s| {
            s.starts_with('/') && s.len() >= 2 && s.len() <= 51
        });
        check("[a-zA-Z0-9+/=._-]{1,24}", |s| {
            !s.is_empty()
                && s.len() <= 24
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || "+/=._-".contains(c))
        });
        check("[a-zA-Z][a-zA-Z0-9\\-]{0,15}", |s| {
            s.chars().next().is_some_and(|c| c.is_ascii_alphabetic())
        });
        check("[!-~]([ -~]{0,30}[!-~])?", |s| {
            !s.is_empty() && !s.starts_with(' ') && !s.ends_with(' ')
        });
        check("(/[a-z0-9._\\-]{1,12}){1,4}(\\?[a-z0-9=&]{1,20})?", |s| {
            s.starts_with('/')
        });
        check("a|bb|ccc", |s| matches!(s, "a" | "bb" | "ccc"));
    }
}
