//! Offline stand-in for `proptest`.
//!
//! Implements the generation-side subset the workspace's property
//! tests use: `Strategy` with `prop_map`, string strategies from a
//! regex subset, integer/float range strategies, tuples, collections,
//! `prop_oneof!`, `any::<T>()`, and the `proptest!` test macro. Each
//! test runs a fixed number of deterministically seeded cases
//! (seed = FNV-1a of the test name mixed with the case index), so
//! failures reproduce exactly. There is **no shrinking**: a failing
//! case asserts immediately with the generated inputs in the panic
//! message via std `assert!`.

pub mod regex;
pub mod rng;
pub mod strategy;

pub use strategy::{any, BoxedStrategy, Strategy};

/// Number of cases each property runs. The real crate defaults to
/// 256; 64 keeps the suite quick while still probing the space.
pub const CASES: u32 = 64;

/// `prop::` namespace as the prelude exposes it.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::{btree_map, vec};
    }

    pub mod option {
        pub use crate::strategy::option_of as of;
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => { assert_eq!($lhs, $rhs) };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => { assert_eq!($lhs, $rhs, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => { assert_ne!($lhs, $rhs) };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => { assert_ne!($lhs, $rhs, $($fmt)+) };
}

/// Uniform choice between heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}

/// The test-defining macro. Bodies run under plain `#[test]`; the
/// `#[test]` attribute itself is written by the caller inside the
/// macro invocation (as with real proptest). Arguments are either
/// `pat in strategy` or `name: Type` (sugar for `any::<Type>()`),
/// freely mixed; bindings are sequential, so later strategies may
/// reference earlier values.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut rng = $crate::rng::TestRng::for_case(stringify!($name), case);
                    $crate::__proptest_bind!(rng; $($args)*);
                    $body
                }
            }
        )*
    };
}

/// Internal muncher behind `proptest!` — binds one argument per step.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident : $ty:ty) => {
        let $arg: $ty = $crate::strategy::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident; $arg:ident : $ty:ty, $($rest:tt)*) => {
        let $arg: $ty = $crate::strategy::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:pat in $strategy:expr) => {
        let $arg = $crate::Strategy::generate(&($strategy), &mut $rng);
    };
    ($rng:ident; $arg:pat in $strategy:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::generate(&($strategy), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}
