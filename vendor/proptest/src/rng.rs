//! Deterministic test RNG (splitmix64 seeded from the test name).

#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Seed derived from test name and case index so every case is
    /// distinct and every run identical.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
