//! Offline stand-in for `rand` 0.8 — **opt-in only**, never part of a
//! default build (see `.cargo/offline.toml` and `vendor/README.md`).
//!
//! Provides [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! and the [`Rng`] methods the workspace uses (`gen`, `gen_range`,
//! `gen_bool`). The core generator is splitmix64 — not cryptographic,
//! but statistically solid for simulation workloads and fully
//! deterministic for a given seed, which is what the sites/corpus
//! generators and their tests rely on.
//!
//! # ⚠ Not stream-compatible with real `rand`
//!
//! Real `rand` 0.8's `StdRng` is ChaCha12; this stub is splitmix64.
//! For the same seed the two produce **different random streams**, so
//! seeded site/corpus generation — and any number derived from it —
//! differs between stub builds and real-dependency builds. Results are
//! deterministic *within* each flavour, but figures and golden numbers
//! are only comparable to runs of the same flavour. Publishable runs
//! must use the default (real-dependency) build.

/// Low-level 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Seedable construction (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Values samplable uniformly from the generator's full range.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// splitmix64: passes standard statistical batteries, one u64 of
    /// state, and deterministic across platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean off: {mean}");

        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }
}
