//! Offline stand-in for the `bytes` crate.
//!
//! The workspace vendors the narrow API subset it actually uses so it
//! builds without a network registry. [`Bytes`] is a cheaply clonable
//! immutable buffer (`Arc<[u8]>` under the hood); [`BytesMut`] is a
//! growable buffer that freezes into one. Semantics match the real
//! crate for every operation exercised here; zero-copy slicing of
//! `Bytes` views is not implemented because nothing needs it.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.data.hash(state)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.data[..] == *other.as_bytes()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.data, f)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    pub fn clear(&mut self) {
        self.data.clear()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional)
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src)
    }

    /// Splits off and returns the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.data.split_off(at);
        BytesMut {
            data: std::mem::replace(&mut self.data, rest),
        }
    }

    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            data: self.data.split_off(at),
        }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        debug_bytes(&self.data, f)
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> BytesMut {
        BytesMut { data: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec() }
    }
}

/// Sink for buffer writes (the subset of the real trait in use).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src)
    }
}

/// Mirrors the real crate's escaped-ASCII `Debug` rendering closely
/// enough for test diagnostics.
fn debug_bytes(data: &[u8], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "b\"")?;
    for &b in data {
        match b {
            b'"' => write!(f, "\\\"")?,
            b'\\' => write!(f, "\\\\")?,
            b'\n' => write!(f, "\\n")?,
            b'\r' => write!(f, "\\r")?,
            b'\t' => write!(f, "\\t")?,
            0x20..=0x7e => write!(f, "{}", b as char)?,
            _ => write!(f, "\\x{b:02x}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_freeze() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_slice(b"hello world");
        let head = buf.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&buf[..], b"world");
        let frozen = buf.freeze();
        assert_eq!(frozen, *b"world".as_slice());
        assert_eq!(frozen.clone(), frozen);
    }

    #[test]
    fn debug_escapes() {
        let b = Bytes::copy_from_slice(b"a\"\n\x01");
        assert_eq!(format!("{b:?}"), "b\"a\\\"\\n\\x01\"");
    }
}
