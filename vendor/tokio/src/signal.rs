//! Signal handling. The stub installs no handler: awaiting
//! [`ctrl_c`] parks forever, and an actual Ctrl-C terminates the
//! process through the default disposition — acceptable for the CLI
//! demo loops that `await` this purely to idle.

pub async fn ctrl_c() -> std::io::Result<()> {
    std::future::pending::<std::io::Result<()>>().await
}
