//! Tasks: one OS thread per spawn, joinable through a shared slot.

use std::fmt;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

/// The spawned task panicked (the only failure a detached-thread task
/// can report; the stub has no cancellation).
pub struct JoinError {
    message: String,
}

impl JoinError {
    fn panicked(payload: Box<dyn std::any::Any + Send>) -> JoinError {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "task panicked".to_owned());
        JoinError { message }
    }

    pub fn is_panic(&self) -> bool {
        true
    }
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JoinError::Panic({:?})", self.message)
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for JoinError {}

type Slot<T> = Arc<Mutex<Option<Result<T, JoinError>>>>;

/// Awaitable handle to a spawned task. Dropping it detaches the task
/// (it keeps running), matching tokio.
pub struct JoinHandle<T> {
    slot: Slot<T>,
}

impl<T> Unpin for JoinHandle<T> {}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
            Some(result) => Poll::Ready(result),
            None => Poll::Pending,
        }
    }
}

impl<T> JoinHandle<T> {
    pub fn is_finished(&self) -> bool {
        self.slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }
}

/// Spawns `future` on its own thread, polled by the thread's own
/// `block_on` loop.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let slot: Slot<F::Output> = Arc::new(Mutex::new(None));
    let task_slot = Arc::clone(&slot);
    std::thread::Builder::new()
        .name("tokio-stub-task".to_owned())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| crate::runtime::block_on(future)));
            *task_slot.lock().unwrap_or_else(|e| e.into_inner()) =
                Some(result.map_err(JoinError::panicked));
        })
        .expect("spawn task thread");
    JoinHandle { slot }
}

/// A dynamic collection of tasks joined in completion order.
pub struct JoinSet<T> {
    handles: Vec<JoinHandle<T>>,
}

impl<T> Default for JoinSet<T> {
    fn default() -> JoinSet<T> {
        JoinSet {
            handles: Vec::new(),
        }
    }
}

impl<T: Send + 'static> JoinSet<T> {
    pub fn new() -> JoinSet<T> {
        JoinSet::default()
    }

    pub fn spawn<F>(&mut self, future: F)
    where
        F: Future<Output = T> + Send + 'static,
    {
        self.handles.push(spawn(future));
    }

    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for the next task to finish; `None` when the set is empty.
    pub fn join_next(&mut self) -> JoinNext<'_, T> {
        JoinNext { set: self }
    }
}

pub struct JoinNext<'a, T> {
    set: &'a mut JoinSet<T>,
}

impl<T> Future for JoinNext<'_, T> {
    type Output = Option<Result<T, JoinError>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let set = &mut self.get_mut().set;
        if set.handles.is_empty() {
            return Poll::Ready(None);
        }
        for i in 0..set.handles.len() {
            if let Poll::Ready(result) = Pin::new(&mut set.handles[i]).poll(cx) {
                set.handles.swap_remove(i);
                return Poll::Ready(Some(result));
            }
        }
        Poll::Pending
    }
}
