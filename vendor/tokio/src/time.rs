//! Wall-clock timers. The executor's park-timeout tick re-polls
//! pending sleeps, so expiry is detected within ~a quarter
//! millisecond without a timer wheel.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

pub use std::time::Instant;

pub struct Sleep {
    deadline: Instant,
}

impl Sleep {
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}

pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}
