//! Wall-clock timers. The executor's park-timeout tick re-polls
//! pending sleeps, so expiry is detected within ~a quarter
//! millisecond without a timer wheel.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

pub use std::time::Instant;

pub struct Sleep {
    deadline: Instant,
}

impl Sleep {
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}

pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

pub struct Timeout<F> {
    future: F,
    deadline: Instant,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // SAFETY: `future` is structurally pinned; it is never moved
        // out of `Timeout` and `Timeout` is only polled when pinned.
        let this = unsafe { self.get_unchecked_mut() };
        let future = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(out) = future.poll(cx) {
            return Poll::Ready(Ok(out));
        }
        if Instant::now() >= this.deadline {
            return Poll::Ready(Err(Elapsed(())));
        }
        Poll::Pending
    }
}

/// Requires `future` to complete before `duration` elapses. Like the
/// sleeps above, expiry is detected by the executor's ~250µs re-poll
/// tick rather than a timer wheel.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        deadline: Instant::now() + duration,
    }
}
