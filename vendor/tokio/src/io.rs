//! Async IO traits, extension methods, duplex pipes, and splitting.

use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll};

use bytes::BytesMut;

/// Destination buffer for [`AsyncRead::poll_read`] (tokio-shaped).
pub struct ReadBuf<'a> {
    buf: &'a mut [u8],
    filled: usize,
}

impl<'a> ReadBuf<'a> {
    pub fn new(buf: &'a mut [u8]) -> ReadBuf<'a> {
        ReadBuf { buf, filled: 0 }
    }

    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    pub fn remaining(&self) -> usize {
        self.buf.len() - self.filled
    }

    pub fn filled(&self) -> &[u8] {
        &self.buf[..self.filled]
    }

    pub fn initialize_unfilled(&mut self) -> &mut [u8] {
        &mut self.buf[self.filled..]
    }

    pub fn advance(&mut self, n: usize) {
        assert!(self.filled + n <= self.buf.len());
        self.filled += n;
    }

    pub fn put_slice(&mut self, data: &[u8]) {
        self.buf[self.filled..self.filled + data.len()].copy_from_slice(data);
        self.filled += data.len();
    }
}

pub trait AsyncRead {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>>;
}

pub trait AsyncWrite {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>>;

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>>;

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>>;
}

impl<T: ?Sized + AsyncRead + Unpin> AsyncRead for Box<T> {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        Pin::new(&mut **self).poll_read(cx, buf)
    }
}

impl<T: ?Sized + AsyncRead + Unpin> AsyncRead for &mut T {
    fn poll_read(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        Pin::new(&mut **self).poll_read(cx, buf)
    }
}

impl<T: ?Sized + AsyncWrite + Unpin> AsyncWrite for Box<T> {
    fn poll_write(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        Pin::new(&mut **self).poll_write(cx, buf)
    }

    fn poll_flush(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut **self).poll_flush(cx)
    }

    fn poll_shutdown(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut **self).poll_shutdown(cx)
    }
}

impl<T: ?Sized + AsyncWrite + Unpin> AsyncWrite for &mut T {
    fn poll_write(
        mut self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        Pin::new(&mut **self).poll_write(cx, buf)
    }

    fn poll_flush(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut **self).poll_flush(cx)
    }

    fn poll_shutdown(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Pin::new(&mut **self).poll_shutdown(cx)
    }
}

// ---------------------------------------------------------------- ext

pub trait AsyncReadExt: AsyncRead {
    fn read<'a>(&'a mut self, buf: &'a mut [u8]) -> Read<'a, Self>
    where
        Self: Unpin,
    {
        Read { io: self, buf }
    }

    fn read_exact<'a>(&'a mut self, buf: &'a mut [u8]) -> ReadExact<'a, Self>
    where
        Self: Unpin,
    {
        ReadExact {
            io: self,
            buf,
            done: 0,
        }
    }

    /// Reads once, appending to `buf`. Returns bytes read (0 = EOF).
    fn read_buf<'a>(&'a mut self, buf: &'a mut BytesMut) -> ReadBufFut<'a, Self>
    where
        Self: Unpin,
    {
        ReadBufFut { io: self, buf }
    }
}

impl<T: AsyncRead + ?Sized> AsyncReadExt for T {}

pub trait AsyncWriteExt: AsyncWrite {
    fn write_all<'a>(&'a mut self, src: &'a [u8]) -> WriteAll<'a, Self>
    where
        Self: Unpin,
    {
        WriteAll { io: self, src }
    }

    fn flush(&mut self) -> Flush<'_, Self>
    where
        Self: Unpin,
    {
        Flush { io: self }
    }

    fn shutdown(&mut self) -> Shutdown<'_, Self>
    where
        Self: Unpin,
    {
        Shutdown { io: self }
    }
}

impl<T: AsyncWrite + ?Sized> AsyncWriteExt for T {}

pub struct Read<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a mut [u8],
}

impl<T: AsyncRead + Unpin + ?Sized> Future for Read<'_, T> {
    type Output = std::io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut rb = ReadBuf::new(this.buf);
        match Pin::new(&mut *this.io).poll_read(cx, &mut rb) {
            Poll::Ready(Ok(())) => Poll::Ready(Ok(rb.filled)),
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

pub struct ReadExact<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a mut [u8],
    done: usize,
}

impl<T: AsyncRead + Unpin + ?Sized> Future for ReadExact<'_, T> {
    type Output = std::io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        while this.done < this.buf.len() {
            let mut rb = ReadBuf::new(&mut this.buf[this.done..]);
            match Pin::new(&mut *this.io).poll_read(cx, &mut rb) {
                Poll::Ready(Ok(())) => {
                    let n = rb.filled().len();
                    if n == 0 {
                        return Poll::Ready(Err(std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            "early eof",
                        )));
                    }
                    this.done += n;
                }
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        Poll::Ready(Ok(this.done))
    }
}

pub struct ReadBufFut<'a, T: ?Sized> {
    io: &'a mut T,
    buf: &'a mut BytesMut,
}

impl<T: AsyncRead + Unpin + ?Sized> Future for ReadBufFut<'_, T> {
    type Output = std::io::Result<usize>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        let mut tmp = [0u8; 16 * 1024];
        let mut rb = ReadBuf::new(&mut tmp);
        match Pin::new(&mut *this.io).poll_read(cx, &mut rb) {
            Poll::Ready(Ok(())) => {
                this.buf.extend_from_slice(rb.filled());
                Poll::Ready(Ok(rb.filled().len()))
            }
            Poll::Ready(Err(e)) => Poll::Ready(Err(e)),
            Poll::Pending => Poll::Pending,
        }
    }
}

pub struct WriteAll<'a, T: ?Sized> {
    io: &'a mut T,
    src: &'a [u8],
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for WriteAll<'_, T> {
    type Output = std::io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        while !this.src.is_empty() {
            match Pin::new(&mut *this.io).poll_write(cx, this.src) {
                Poll::Ready(Ok(0)) => {
                    return Poll::Ready(Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "write zero",
                    )))
                }
                Poll::Ready(Ok(n)) => this.src = &this.src[n..],
                Poll::Ready(Err(e)) => return Poll::Ready(Err(e)),
                Poll::Pending => return Poll::Pending,
            }
        }
        Poll::Ready(Ok(()))
    }
}

pub struct Flush<'a, T: ?Sized> {
    io: &'a mut T,
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for Flush<'_, T> {
    type Output = std::io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        Pin::new(&mut *this.io).poll_flush(cx)
    }
}

pub struct Shutdown<'a, T: ?Sized> {
    io: &'a mut T,
}

impl<T: AsyncWrite + Unpin + ?Sized> Future for Shutdown<'_, T> {
    type Output = std::io::Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        Pin::new(&mut *this.io).poll_shutdown(cx)
    }
}

// ------------------------------------------------------------- duplex

struct PipeState {
    buf: std::collections::VecDeque<u8>,
    capacity: usize,
    writer_closed: bool,
    reader_closed: bool,
}

struct Pipe {
    state: Mutex<PipeState>,
}

impl Pipe {
    fn new(capacity: usize) -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: std::collections::VecDeque::new(),
                capacity,
                writer_closed: false,
                reader_closed: false,
            }),
        })
    }
}

/// One endpoint of an in-memory, capacity-bounded byte pipe pair.
pub struct DuplexStream {
    incoming: Arc<Pipe>,
    outgoing: Arc<Pipe>,
}

/// Creates a connected pair of bidirectional in-memory streams.
pub fn duplex(max_buf_size: usize) -> (DuplexStream, DuplexStream) {
    let a_to_b = Pipe::new(max_buf_size);
    let b_to_a = Pipe::new(max_buf_size);
    (
        DuplexStream {
            incoming: Arc::clone(&b_to_a),
            outgoing: Arc::clone(&a_to_b),
        },
        DuplexStream {
            incoming: a_to_b,
            outgoing: b_to_a,
        },
    )
}

impl Drop for DuplexStream {
    fn drop(&mut self) {
        // Peer reads see EOF; peer writes see BrokenPipe.
        self.outgoing
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .writer_closed = true;
        self.incoming
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .reader_closed = true;
    }
}

impl AsyncRead for DuplexStream {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let mut state = self
            .incoming
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if state.buf.is_empty() {
            return if state.writer_closed {
                Poll::Ready(Ok(())) // EOF
            } else {
                Poll::Pending
            };
        }
        let n = state.buf.len().min(buf.remaining());
        for _ in 0..n {
            let byte = state.buf.pop_front().expect("checked non-empty");
            buf.put_slice(&[byte]);
        }
        Poll::Ready(Ok(()))
    }
}

impl AsyncWrite for DuplexStream {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        let mut state = self
            .outgoing
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if state.reader_closed {
            return Poll::Ready(Err(std::io::ErrorKind::BrokenPipe.into()));
        }
        let space = state.capacity - state.buf.len();
        if space == 0 {
            return Poll::Pending;
        }
        let n = space.min(buf.len());
        state.buf.extend(&buf[..n]);
        Poll::Ready(Ok(n))
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        Poll::Ready(Ok(()))
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        self.outgoing
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .writer_closed = true;
        Poll::Ready(Ok(()))
    }
}

// -------------------------------------------------------------- split

/// Read half of a [`split`] stream.
pub struct ReadHalf<T> {
    inner: Arc<Mutex<T>>,
}

/// Write half of a [`split`] stream.
pub struct WriteHalf<T> {
    inner: Arc<Mutex<T>>,
}

/// Splits a stream into independently usable read and write halves.
pub fn split<T>(stream: T) -> (ReadHalf<T>, WriteHalf<T>)
where
    T: AsyncRead + AsyncWrite + Unpin,
{
    let inner = Arc::new(Mutex::new(stream));
    (
        ReadHalf {
            inner: Arc::clone(&inner),
        },
        WriteHalf { inner },
    )
}

impl<T: AsyncRead + Unpin> AsyncRead for ReadHalf<T> {
    fn poll_read(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Pin::new(&mut *guard).poll_read(cx, buf)
    }
}

impl<T: AsyncWrite + Unpin> AsyncWrite for WriteHalf<T> {
    fn poll_write(
        self: Pin<&mut Self>,
        cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Pin::new(&mut *guard).poll_write(cx, buf)
    }

    fn poll_flush(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Pin::new(&mut *guard).poll_flush(cx)
    }

    fn poll_shutdown(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        Pin::new(&mut *guard).poll_shutdown(cx)
    }
}
