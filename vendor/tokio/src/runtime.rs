//! The executor: a `block_on` poll loop with a park-timeout tick.
//!
//! # ⚠ Timing fidelity
//!
//! There is no reactor: IO readiness and timer expiry are detected by
//! re-polling every [`POLL_TICK`] (250µs), and `TcpStream::connect`
//! blocks. Every live-TCP latency measurement taken on a stub build
//! (origin handle time over sockets, live-loader RTT/HAR timings)
//! therefore carries up to one poll tick of noise **per await point**.
//! Latency numbers intended for comparison or publication must come
//! from real-tokio (default) builds; the discrete-event simulator is
//! unaffected because it uses virtual time.

use std::future::Future;
use std::pin::pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;
use std::time::Duration;

/// How often a pending task re-polls when nothing wakes it. This is
/// the reactor substitute: IO readiness and timer expiry are detected
/// by re-polling, so this bounds their added latency.
const POLL_TICK: Duration = Duration::from_micros(250);

struct ThreadWaker {
    thread: Thread,
    woken: AtomicBool,
}

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.woken.store(true, Ordering::Release);
        self.thread.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.woken.store(true, Ordering::Release);
        self.thread.unpark();
    }
}

/// Drives a future to completion on the current thread.
pub(crate) fn block_on<F: Future>(future: F) -> F::Output {
    let waker_state = Arc::new(ThreadWaker {
        thread: std::thread::current(),
        woken: AtomicBool::new(false),
    });
    let waker = Waker::from(Arc::clone(&waker_state));
    let mut cx = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => {
                // Skip the park if a wake raced in during the poll.
                if !waker_state.woken.swap(false, Ordering::Acquire) {
                    std::thread::park_timeout(POLL_TICK);
                    waker_state.woken.store(false, Ordering::Release);
                }
            }
        }
    }
}

/// The tokio `Runtime` façade. All flavors behave identically here.
#[derive(Debug)]
pub struct Runtime {
    _priv: (),
}

impl Runtime {
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime { _priv: () })
    }

    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        block_on(future)
    }

    pub fn spawn<F>(&self, future: F) -> crate::task::JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        crate::task::spawn(future)
    }
}

/// Accepted for API compatibility; both flavors are thread-per-task.
#[derive(Debug, Default)]
pub struct Builder {
    _priv: (),
}

impl Builder {
    pub fn new_current_thread() -> Builder {
        Builder::default()
    }

    pub fn new_multi_thread() -> Builder {
        Builder::default()
    }

    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Runtime::new()
    }
}
