//! Synchronization primitives: watch/mpsc channels, async Mutex,
//! Semaphore. All futures here return `Pending` without registering
//! wakers and rely on the executor's poll tick; close/drop semantics
//! match tokio for the operations the workspace performs.

use std::cell::UnsafeCell;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};

pub mod watch {
    use super::*;

    struct Shared<T> {
        value: std::sync::Mutex<T>,
        version: AtomicU64,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub fn channel<T>(init: T) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            value: std::sync::Mutex::new(init),
            version: AtomicU64::new(0),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared, seen: 0 },
        )
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError(());

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "watch channel closed")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            *self.shared.value.lock().unwrap_or_else(|e| e.into_inner()) = value;
            self.shared.version.fetch_add(1, Ordering::Release);
            Ok(())
        }

        pub fn subscribe(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                shared: Arc::clone(&self.shared),
                seen: self.shared.version.load(Ordering::Acquire),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.senders.fetch_sub(1, Ordering::Release);
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
        seen: u64,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::Relaxed);
            Receiver {
                shared: Arc::clone(&self.shared),
                seen: self.seen,
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::Release);
        }
    }

    /// Borrowed view of the latest value.
    pub struct Ref<'a, T> {
        guard: std::sync::MutexGuard<'a, T>,
    }

    impl<T> std::ops::Deref for Ref<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.guard
        }
    }

    impl<T> Receiver<T> {
        pub fn borrow(&self) -> Ref<'_, T> {
            Ref {
                guard: self.shared.value.lock().unwrap_or_else(|e| e.into_inner()),
            }
        }

        pub fn borrow_and_update(&mut self) -> Ref<'_, T> {
            self.seen = self.shared.version.load(Ordering::Acquire);
            self.borrow()
        }

        /// Completes when a value newer than the last seen arrives.
        pub fn changed(&mut self) -> Changed<'_, T> {
            Changed { rx: self }
        }
    }

    pub struct Changed<'a, T> {
        rx: &'a mut Receiver<T>,
    }

    impl<T> Future for Changed<'_, T> {
        type Output = Result<(), RecvError>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let rx = &mut self.get_mut().rx;
            let version = rx.shared.version.load(Ordering::Acquire);
            if version != rx.seen {
                rx.seen = version;
                return Poll::Ready(Ok(()));
            }
            if rx.shared.senders.load(Ordering::Acquire) == 0 {
                return Poll::Ready(Err(RecvError(())));
            }
            Poll::Pending
        }
    }
}

pub mod mpsc {
    use super::*;

    struct Shared<T> {
        queue: std::sync::Mutex<std::collections::VecDeque<T>>,
        capacity: usize,
        senders: AtomicUsize,
        rx_alive: AtomicBool,
    }

    pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity > 0, "mpsc bounded channel requires capacity > 0");
        let shared = Arc::new(Shared {
            queue: std::sync::Mutex::new(std::collections::VecDeque::new()),
            capacity,
            senders: AtomicUsize::new(1),
            rx_alive: AtomicBool::new(true),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            self.shared.senders.fetch_sub(1, Ordering::Release);
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Send<'_, T> {
            Send {
                shared: &self.shared,
                value: Some(value),
            }
        }
    }

    pub struct Send<'a, T> {
        shared: &'a Shared<T>,
        value: Option<T>,
    }

    // The future never holds self-references; the Option is plain data.
    impl<T> Unpin for Send<'_, T> {}

    impl<T> Future for Send<'_, T> {
        type Output = Result<(), SendError<T>>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            if !this.shared.rx_alive.load(Ordering::Acquire) {
                let v = this.value.take().expect("polled after completion");
                return Poll::Ready(Err(SendError(v)));
            }
            let mut queue = this.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if queue.len() < this.shared.capacity {
                queue.push_back(this.value.take().expect("polled after completion"));
                Poll::Ready(Ok(()))
            } else {
                Poll::Pending
            }
        }
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.rx_alive.store(false, Ordering::Release);
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&mut self) -> Recv<'_, T> {
            Recv {
                shared: &self.shared,
            }
        }
    }

    pub struct Recv<'a, T> {
        shared: &'a Shared<T>,
    }

    impl<T> Future for Recv<'_, T> {
        type Output = Option<T>;

        fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = queue.pop_front() {
                return Poll::Ready(Some(v));
            }
            drop(queue);
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Poll::Ready(None);
            }
            Poll::Pending
        }
    }
}

// --------------------------------------------------------- async Mutex

/// Async mutex. Guards are `Send`, so they may legally live across
/// `.await` points in spawned tasks.
pub struct Mutex<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> Lock<'_, T> {
        Lock { mutex: self }
    }

    pub fn try_lock(&self) -> Result<MutexGuard<'_, T>, TryLockError> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Ok(MutexGuard { mutex: self })
        } else {
            Err(TryLockError(()))
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

#[derive(Debug)]
pub struct TryLockError(());

impl std::fmt::Display for TryLockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "mutex is locked")
    }
}

impl std::error::Error for TryLockError {}

pub struct Lock<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<'a, T: ?Sized> Future for Lock<'a, T> {
    type Output = MutexGuard<'a, T>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.mutex.try_lock() {
            Ok(guard) => Poll::Ready(guard),
            Err(_) => Poll::Pending,
        }
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

unsafe impl<T: ?Sized + Send> Send for MutexGuard<'_, T> {}
unsafe impl<T: ?Sized + Sync> Sync for MutexGuard<'_, T> {}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.mutex.data.get() }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.mutex.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.mutex.locked.store(false, Ordering::Release);
    }
}

// ----------------------------------------------------------- Semaphore

/// Counting semaphore. Never closed in this stub, so
/// [`Semaphore::acquire`] only errs in type, not in practice.
pub struct Semaphore {
    permits: std::sync::Mutex<usize>,
}

#[derive(Debug)]
pub struct AcquireError(());

impl std::fmt::Display for AcquireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "semaphore closed")
    }
}

impl std::error::Error for AcquireError {}

impl Semaphore {
    pub fn new(permits: usize) -> Semaphore {
        Semaphore {
            permits: std::sync::Mutex::new(permits),
        }
    }

    pub fn available_permits(&self) -> usize {
        *self.permits.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn acquire(&self) -> Acquire<'_> {
        Acquire { sem: self }
    }

    pub fn add_permits(&self, n: usize) {
        *self.permits.lock().unwrap_or_else(|e| e.into_inner()) += n;
    }
}

pub struct Acquire<'a> {
    sem: &'a Semaphore,
}

impl<'a> Future for Acquire<'a> {
    type Output = Result<SemaphorePermit<'a>, AcquireError>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut permits = self.sem.permits.lock().unwrap_or_else(|e| e.into_inner());
        if *permits > 0 {
            *permits -= 1;
            Poll::Ready(Ok(SemaphorePermit { sem: self.sem }))
        } else {
            Poll::Pending
        }
    }
}

pub struct SemaphorePermit<'a> {
    sem: &'a Semaphore,
}

impl Drop for SemaphorePermit<'_> {
    fn drop(&mut self) {
        self.sem.add_permits(1);
    }
}
