//! TCP types over nonblocking std sockets.

use std::future::Future;
use std::io::{Read as _, Write as _};
use std::net::SocketAddr;
use std::pin::Pin;
use std::task::{Context, Poll};

use crate::io::{AsyncRead, AsyncWrite, ReadBuf};

pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    pub async fn bind<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub fn accept(&self) -> Accept<'_> {
        Accept { listener: self }
    }
}

pub struct Accept<'a> {
    listener: &'a TcpListener,
}

impl Future for Accept<'_> {
    type Output = std::io::Result<(TcpStream, SocketAddr)>;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
        match self.listener.inner.accept() {
            Ok((stream, peer)) => {
                if let Err(e) = stream.set_nonblocking(true) {
                    return Poll::Ready(Err(e));
                }
                Poll::Ready(Ok((TcpStream { inner: stream }, peer)))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connects with a blocking handshake (instant on loopback, which
    /// is all this workspace dials), then switches to nonblocking IO.
    pub async fn connect<A: std::net::ToSocketAddrs>(addr: A) -> std::io::Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    pub fn set_nodelay(&self, nodelay: bool) -> std::io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub fn peer_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.peer_addr()
    }
}

impl AsyncRead for TcpStream {
    fn poll_read(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &mut ReadBuf<'_>,
    ) -> Poll<std::io::Result<()>> {
        let dst = buf.initialize_unfilled();
        match (&self.inner).read(dst) {
            Ok(n) => {
                buf.advance(n);
                Poll::Ready(Ok(()))
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

impl AsyncWrite for TcpStream {
    fn poll_write(
        self: Pin<&mut Self>,
        _cx: &mut Context<'_>,
        buf: &[u8],
    ) -> Poll<std::io::Result<usize>> {
        match (&self.inner).write(buf) {
            Ok(n) => Poll::Ready(Ok(n)),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_flush(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        match (&self.inner).flush() {
            Ok(()) => Poll::Ready(Ok(())),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Poll::Pending,
            Err(e) => Poll::Ready(Err(e)),
        }
    }

    fn poll_shutdown(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<std::io::Result<()>> {
        match self.inner.shutdown(std::net::Shutdown::Write) {
            Ok(()) => Poll::Ready(Ok(())),
            Err(e) if e.kind() == std::io::ErrorKind::NotConnected => Poll::Ready(Ok(())),
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}
