//! Offline stand-in for `tokio`.
//!
//! The workspace vendors the subset of tokio it uses so it builds and
//! tests without a network registry. The execution model is honest but
//! simple: every spawned task is an OS thread driving its future with
//! a `block_on` loop, and instead of an epoll reactor, a task whose
//! future returns `Pending` re-polls on a short `park_timeout` tick
//! (wakers still cut the latency when a peer thread signals). That
//! trades scalability for zero dependencies — plenty for the test
//! suites and demos here, which run dozens of tasks, not millions.
//!
//! Semantics preserved: nonblocking sockets, duplex pipes with
//! capacity, watch/mpsc channel close behavior, JoinHandle detach on
//! drop, async Mutex/Semaphore, wall-clock timers. `start_paused`
//! test time is NOT virtualized — timers run in real time.

pub mod io;
pub mod net;
pub mod runtime;
pub mod signal;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;

/// `#[tokio::main]` / `#[tokio::test]`.
pub use tokio_macros::{main, test};

#[doc(hidden)]
pub mod macros_support {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    pub enum Either<A, B> {
        A(A),
        B(B),
    }

    /// Polls two futures, completing with whichever is ready first
    /// (left-biased on simultaneous readiness).
    pub struct Select2<'a, FA, FB> {
        pub a: Pin<&'a mut FA>,
        pub b: Pin<&'a mut FB>,
    }

    impl<FA: Future, FB: Future> Future for Select2<'_, FA, FB> {
        type Output = Either<FA::Output, FB::Output>;

        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let this = self.get_mut();
            if let Poll::Ready(v) = this.a.as_mut().poll(cx) {
                return Poll::Ready(Either::A(v));
            }
            if let Poll::Ready(v) = this.b.as_mut().poll(cx) {
                return Poll::Ready(Either::B(v));
            }
            Poll::Pending
        }
    }
}

/// Two-branch `select!` — the only arity the workspace uses.
#[macro_export]
macro_rules! select {
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:expr $(,)?) => {
        $crate::select!($p1 = $f1 => $b1, $p2 = $f2 => $b2)
    };
    ($p1:pat = $f1:expr => $b1:block $p2:pat = $f2:expr => $b2:block) => {
        $crate::select!($p1 = $f1 => $b1, $p2 = $f2 => $b2)
    };
    ($p1:pat = $f1:expr => $b1:expr, $p2:pat = $f2:expr => $b2:expr $(,)?) => {{
        let mut __select_a = ::std::boxed::Box::pin($f1);
        let mut __select_b = ::std::boxed::Box::pin($f2);
        match ($crate::macros_support::Select2 {
            a: __select_a.as_mut(),
            b: __select_b.as_mut(),
        })
        .await
        {
            $crate::macros_support::Either::A(__v) => {
                let $p1 = __v;
                $b1
            }
            $crate::macros_support::Either::B(__v) => {
                let $p2 = __v;
                $b2
            }
        }
    }};
}
