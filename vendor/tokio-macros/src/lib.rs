//! Offline stand-in for `tokio-macros`.
//!
//! Implements `#[tokio::main]` and `#[tokio::test]` by a textual
//! transform (no `syn`/`quote`): the annotated `async fn NAME` is kept
//! verbatim as an inner item of a synchronous wrapper of the same
//! name, which drives it with `tokio::runtime::Runtime::block_on`.
//! Attribute arguments (`flavor`, `worker_threads`, `start_paused`)
//! are accepted and ignored — the vendored runtime has a single
//! thread-per-task flavor and runs timers on the wall clock.

use proc_macro::TokenStream;

#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    wrap(item, false)
}

#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    wrap(item, true)
}

fn wrap(item: TokenStream, is_test: bool) -> TokenStream {
    let src = item.to_string();
    let Some(name) = fn_name(&src) else {
        panic!("#[tokio::main]/#[tokio::test] expects an `async fn`");
    };
    let test_attr = if is_test {
        "#[::core::prelude::v1::test]\n"
    } else {
        ""
    };
    // The original async fn becomes an inner item and shadows the
    // wrapper inside its own body, so `NAME()` resolves to it.
    let out = format!(
        "{test_attr}fn {name}() {{\n{src}\n::tokio::runtime::Runtime::new()\
         .expect(\"build stub tokio runtime\").block_on({name}());\n}}"
    );
    out.parse().expect("generated wrapper parses")
}

/// Extracts the function name following the (first) `async fn`.
fn fn_name(src: &str) -> Option<&str> {
    // `to_string` on a TokenStream separates tokens with spaces, so
    // "async fn" is stable; doc attributes above the fn are fine.
    let idx = src.find("async fn")?;
    let rest = src[idx + "async fn".len()..].trim_start();
    let end = rest.find(|c: char| !(c.is_alphanumeric() || c == '_'))?;
    if end == 0 {
        return None;
    }
    Some(&rest[..end])
}
