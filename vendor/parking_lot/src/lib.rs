//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s poison-free API:
//! `lock()` returns the guard directly, and a panicked holder does not
//! poison the lock for everyone else.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => write!(f, "Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_is_not_poisoned_by_panic() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
